"""Execution timing model and rename table tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.backend.exec_model import ExecModel
from repro.common.config import BackendConfig
from repro.frontend.rename import RenameTable
from repro.isa.opcodes import NUM_ARCH_REGS, Op


class TestExecModel:
    def make(self, **overrides):
        return ExecModel(BackendConfig(**overrides))

    def test_fu_classes(self):
        model = self.make()
        assert model.fu_class(Op.ADD) == "alu"
        assert model.fu_class(Op.MUL) == "mul"
        assert model.fu_class(Op.DIV) == "div"
        assert model.fu_class(Op.MOD) == "div"
        assert model.fu_class(Op.LOAD) == "load"
        assert model.fu_class(Op.BEQZ) == "branch"

    def test_latencies(self):
        model = self.make(alu_latency=1, mul_latency=3, div_latency=12)
        assert model.latency("alu") == 1
        assert model.latency("mul") == 3
        assert model.latency("div") == 12

    def test_port_contention_pushes_later(self):
        model = self.make(div_units=1)
        first = model.schedule("div", 10)
        second = model.schedule("div", 10)
        assert first == 10
        assert second == 11

    def test_issue_width_cap(self):
        model = self.make(int_alu_units=16, issue_width=4)
        cycles = [model.schedule("alu", 5) for _ in range(6)]
        assert cycles.count(5) == 4
        assert cycles.count(6) == 2

    def test_independent_classes_share_width_only(self):
        model = self.make(issue_width=2, int_alu_units=2, load_ports=2)
        a = model.schedule("alu", 3)
        b = model.schedule("load", 3)
        c = model.schedule("alu", 3)
        assert (a, b) == (3, 3)
        assert c == 4

    def test_trim_keeps_future_reservations(self):
        model = self.make(div_units=1)
        model.schedule("div", 10_000)
        # force trim bookkeeping path
        for cycle in range(5000):
            model.schedule("alu", cycle)
        model.trim(9_000)
        assert model.schedule("div", 10_000) == 10_001


class TestRenameTable:
    def test_initial_identity_mapping(self):
        rat = RenameTable()
        for reg in range(NUM_ARCH_REGS):
            assert rat.lookup(reg) == reg
            assert rat.ready_cycle(rat.lookup(reg)) == 0

    def test_allocate_gives_fresh_tags(self):
        rat = RenameTable()
        tag1 = rat.allocate(3)
        tag2 = rat.allocate(3)
        assert tag1 != tag2
        assert rat.lookup(3) == tag2

    def test_ready_cycles_follow_tags(self):
        rat = RenameTable()
        tag = rat.allocate(5)
        rat.set_ready(tag, 42)
        assert rat.ready_cycle(rat.lookup(5)) == 42

    def test_checkpoint_restore_exact(self):
        rat = RenameTable()
        tag_a = rat.allocate(1)
        rat.set_ready(tag_a, 10)
        snap = rat.checkpoint()
        tag_b = rat.allocate(1)
        rat.set_ready(tag_b, 99)
        rat.restore(snap)
        assert rat.lookup(1) == tag_a
        assert rat.ready_cycle(rat.lookup(1)) == 10

    def test_old_values_survive_restore(self):
        """Squashed-path tags never alias surviving mappings."""
        rat = RenameTable()
        snap = rat.checkpoint()
        wrong_tag = rat.allocate(2)
        rat.set_ready(wrong_tag, 1000)
        rat.restore(snap)
        assert rat.ready_cycle(rat.lookup(2)) == 0

    @given(st.lists(st.tuples(st.integers(0, NUM_ARCH_REGS - 1),
                              st.integers(0, 100)), max_size=40))
    def test_checkpoints_always_roundtrip(self, ops):
        rat = RenameTable()
        snapshots = []
        for reg, ready in ops:
            snapshots.append((rat.checkpoint(),
                              [rat.lookup(r) for r in range(NUM_ARCH_REGS)]))
            tag = rat.allocate(reg)
            rat.set_ready(tag, ready)
        for snap, mapping in reversed(snapshots):
            rat.restore(snap)
            assert [rat.lookup(r) for r in range(NUM_ARCH_REGS)] == mapping

    def test_compact_preserves_live_tags(self):
        rat = RenameTable()
        tag = rat.allocate(7)
        rat.set_ready(tag, 55)
        rat.compact(min_live_tag=tag + 100)
        assert rat.ready_cycle(rat.lookup(7)) == 55
