"""Tests for the optional extensions: alternate-path I-prefetching
(Section III-A future work) and the energy summary (Section V-I)."""

from repro.analysis.area import OverheadModel
from repro.common.config import small_core_config
from repro.core.simulator import run_benchmark



class TestAlternatePathPrefetch:
    """Drive the APF engine against a branch whose alternate path sits in
    a cold I-cache region, so the path terminates on the I-cache miss."""

    def run_engine(self, prefetch):
        from repro.branch.btb import BTB
        from repro.branch.h2p import H2PTable
        from repro.branch.history import SpeculativeHistory
        from repro.branch.indirect import IndirectPredictor
        from repro.branch.ras import ReturnAddressStack
        from repro.branch.tage import TageSCL
        from repro.common.config import (
            APFConfig, BTBConfig, FrontendConfig, H2PTableConfig)
        from repro.common.statistics import StatGroup
        from repro.core.apf import APFEngine
        from repro.core.fetch_engine import BranchUnit
        from repro.core.uops import InflightBranch
        from repro.isa.opcodes import BranchKind, Op
        from repro.memory.cache import CacheHierarchy
        from repro.workloads.program import ProgramBuilder

        b = ProgramBuilder()
        b.label("entry")
        # a branch whose taken target is far away in never-fetched code
        b.branch(Op.BEQZ, "far", src1=1)
        b.nop_pad(100)
        b.align(1 << 14)
        b.label("far")
        b.nop_pad(100)
        b.halt()
        program = b.finalize(entry_label="entry")

        config = small_core_config()
        apf_cfg = APFConfig(enabled=True,
                            prefetch_alternate_icache=prefetch)
        bu = BranchUnit(TageSCL(config.tage, seed=3), BTB(BTBConfig()),
                        IndirectPredictor(), H2PTable(H2PTableConfig()))
        hierarchy = CacheHierarchy(config.memory)
        hierarchy.ifetch(program.code_base)  # warm only the entry line
        stats = StatGroup("apf")
        engine = APFEngine(apf_cfg, bu, program, hierarchy,
                           FrontendConfig(), stats)
        branch_uop = program.uop_at(program.code_base)
        rec = InflightBranch(1, branch_uop, BranchKind.CONDITIONAL, True, 0)
        rec.predicted_taken = False      # alternate path = the cold target
        rec.h2p_marked = True
        rec.hist_checkpoint = (0, 0)
        rec.ras_checkpoint = ()
        hist, ras = SpeculativeHistory(128), ReturnAddressStack(32)
        for cycle in range(4):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
        return engine, hierarchy

    def test_prefetches_issued_when_enabled(self):
        engine, hierarchy = self.run_engine(prefetch=True)
        assert engine.stats.get("apf_icache_terminations") == 1
        assert engine.stats.get("apf_icache_prefetches") == 1
        # the line is now resident: the prefetch was actually performed
        far_pc = engine.program.code_base + (1 << 14)
        assert hierarchy.icache.probe(far_pc)

    def test_no_prefetches_by_default(self):
        engine, hierarchy = self.run_engine(prefetch=False)
        assert engine.stats.get("apf_icache_terminations") == 1
        assert engine.stats.get("apf_icache_prefetches") == 0
        far_pc = engine.program.code_base + (1 << 14)
        assert not hierarchy.icache.probe(far_pc)


class TestEnergySummary:
    def test_summary_fields_consistent(self):
        base = run_benchmark("leela", warmup=4_000, measure=6_000)
        apf_cfg = small_core_config().with_apf()
        apf = run_benchmark("leela", config=apf_cfg,
                            warmup=4_000, measure=6_000)
        model = OverheadModel(apf_cfg)
        summary = model.energy_summary(apf, base)
        assert 0.0 <= summary["apf_activity"] <= 1.0
        assert summary["dynamic_overhead"] \
            <= OverheadModel.APF_DYNAMIC_POWER
        assert summary["net_energy_delta"] == (
            summary["dynamic_overhead"] - summary["static_saving"])

    def test_activity_reflects_busy_pipeline(self):
        base = run_benchmark("leela", warmup=4_000, measure=6_000)
        apf_cfg = small_core_config().with_apf()
        apf = run_benchmark("leela", config=apf_cfg,
                            warmup=4_000, measure=6_000)
        summary = OverheadModel(apf_cfg).energy_summary(apf, base)
        # leela has abundant H2P branches: the APF pipeline is busy a
        # large fraction of the time (the paper reports ~65% on average)
        assert summary["apf_activity"] > 0.3
