"""Golden equivalence: the event-driven cycle-skipping loop must be
bit-identical to the per-cycle reference loop.

The skip loop (``run(..., cycle_by_cycle=False)``, the default) jumps
``now`` across provably idle windows and batch-increments the stall
counters those windows would have produced. These tests pin the
non-negotiable invariant from the optimization: cycles, retired count,
and the *entire* statistics snapshot are equal between the two loops —
straight runs, warmed-up runs, and runs split by a
quiesce/snapshot/restore boundary.
"""

import pytest

from repro.common.config import small_core_config
from repro.core.ooo_core import OoOCore
from repro.obs import ObsSink
from repro.obs.accounting import CPI_PREFIX, stack_from_counters
from repro.workloads.profiles import build_workload, workload_trace

WORKLOADS = ["leela", "mcf", "tc"]
CONFIGS = {
    "base": lambda: small_core_config(),
    "apf": lambda: small_core_config().with_apf(),
}
TOTAL = 6_000
SEED = 7


def make_core(workload, config_key):
    program = build_workload(workload)
    trace = workload_trace(workload, TOTAL)
    return OoOCore(CONFIGS[config_key](), program, trace, seed=SEED)


def fingerprint(core):
    return {
        "now": core.now,
        "retired": core.retired,
        "counters": core.stats.counters,
        "ipc": core.ipc(),
    }


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config_key", ["base", "apf"])
class TestLoopEquivalence:
    def test_straight_run(self, workload, config_key):
        ref = make_core(workload, config_key)
        ref.run(TOTAL, cycle_by_cycle=True)
        skip = make_core(workload, config_key)
        skip.run(TOTAL)
        assert fingerprint(skip) == fingerprint(ref)

    def test_warmup_run(self, workload, config_key):
        """Warmup gates stat collection; the measured() deltas and final
        snapshots must still match exactly."""
        warmup = 2_000
        ref = make_core(workload, config_key)
        ref.run(TOTAL, warmup=warmup, cycle_by_cycle=True)
        skip = make_core(workload, config_key)
        skip.run(TOTAL, warmup=warmup)
        assert fingerprint(skip) == fingerprint(ref)
        for key in ("recoveries", "cond_mispredicts", "stall_rob",
                    "stall_ftq_full"):
            assert skip.measured(key) == ref.measured(key)

    def test_across_snapshot_restore(self, workload, config_key):
        """Run to a split point, quiesce, snapshot, restore into a fresh
        core, and continue — both loops must agree at the boundary (the
        full snapshot dict) and at the end."""
        split = TOTAL // 2
        boundaries = {}
        finals = {}
        for mode, cycle_by_cycle in (("ref", True), ("skip", False)):
            first = make_core(workload, config_key)
            first.run(split, cycle_by_cycle=cycle_by_cycle)
            first.quiesce()
            state = first.snapshot()
            boundaries[mode] = state
            second = make_core(workload, config_key)
            second.restore(state)
            second.run(TOTAL, cycle_by_cycle=cycle_by_cycle)
            finals[mode] = fingerprint(second)
        assert boundaries["skip"] == boundaries["ref"]
        assert finals["skip"] == finals["ref"]

    def test_cpi_stack_sums_and_matches_across_drivers(self, workload,
                                                       config_key):
        """Every issue slot is attributed to exactly one CPI-stack leaf:
        the leaves sum to ``width * cycles`` bit-exactly, and the whole
        stack is identical under both loop drivers."""
        width = CONFIGS[config_key]().backend.allocate_width
        stacks = {}
        for mode, cycle_by_cycle in (("ref", True), ("skip", False)):
            core = make_core(workload, config_key)
            core.run(TOTAL, cycle_by_cycle=cycle_by_cycle)
            stack = stack_from_counters(core.stats.counters, width=width,
                                        cycles=core.now, workload=workload,
                                        config=config_key,
                                        instructions=core.retired)
            stack.check()   # raises on any sum-invariant violation
            stacks[mode] = stack
        assert stacks["skip"].slots == stacks["ref"].slots

    def test_exactly_one_backend_stall_per_blocked_cycle(self, workload,
                                                         config_key):
        """A blocked allocation cycle fires exactly one backend stall
        counter — never zero-and-blocked, never two (the _allocate
        priority chain returns right after the first increment)."""
        core = make_core(workload, config_key)
        cells = (core._c_stall_rob, core._c_stall_sched,
                 core._c_stall_lq, core._c_stall_sq)
        original = core._allocate
        violations = []

        def checked_allocate():
            before = tuple(cell.value for cell in cells)
            original()
            deltas = [cell.value - prev
                      for cell, prev in zip(cells, before)]
            if sum(deltas) > 1 or any(d not in (0, 1) for d in deltas):
                violations.append((core.now, deltas))

        core._allocate = checked_allocate
        core.run(TOTAL, cycle_by_cycle=True)
        assert not violations
        assert sum(cell.value for cell in cells) > 0, \
            "workloads are sized to exercise at least one backend stall"

    def test_obs_sink_does_not_change_timing_or_attribution(
            self, workload, config_key):
        """Attaching an observability sink must leave cycles, retirement,
        and every cpi_* leaf bit-identical (events fire off the same
        state changes the accounting already observes)."""
        plain = make_core(workload, config_key)
        plain.run(TOTAL)
        observed = make_core(workload, config_key)
        observed.attach_obs(ObsSink())
        observed.run(TOTAL)
        assert fingerprint(observed) == fingerprint(plain)
        cpi = {k: v for k, v in plain.stats.counters.items()
               if k.startswith(CPI_PREFIX)}
        assert cpi  # the run produced attribution at all
        assert {k: v for k, v in observed.stats.counters.items()
                if k.startswith(CPI_PREFIX)} == cpi


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config_key", ["base", "apf"])
class TestBlockFastPath:
    """The block-grain frontend fast path (batchable bundles, block
    templates, batch ROB allocation) is a pure optimization: forcing it
    off must reproduce every cycle and counter bit-exactly."""

    def test_fast_path_off_is_bit_identical(self, workload, config_key):
        fast = make_core(workload, config_key)
        fast.run(TOTAL)
        # the run must actually have exercised the fast path, or this
        # test proves nothing
        assert len(fast.block_cache) > 0
        slow = make_core(workload, config_key)
        slow.fetch.use_block_fast_path = False
        slow.run(TOTAL)
        assert len(slow.block_cache) == 0
        assert fingerprint(slow) == fingerprint(fast)

    def test_fast_path_off_matches_reference_loop(self, workload,
                                                  config_key):
        """Close the triangle: (skip, fast) == (ref, slow), so all four
        driver/fast-path combinations are transitively identical."""
        fast = make_core(workload, config_key)
        fast.run(TOTAL)
        ref = make_core(workload, config_key)
        ref.fetch.use_block_fast_path = False
        ref.run(TOTAL, cycle_by_cycle=True)
        assert fingerprint(ref) == fingerprint(fast)

    def test_snapshot_restore_at_mid_block_splits(self, workload,
                                                  config_key):
        """Quiesce/snapshot at split points chosen to land mid-block
        (odd, non-round retire counts): the fast path must drain
        cleanly, producing the same snapshot dict and the same resumed
        run as the per-uop reference path split at the same point."""
        for split in (TOTAL // 3 + 1, TOTAL // 2 + 7):
            results = {}
            for fp in (True, False):
                first = make_core(workload, config_key)
                first.fetch.use_block_fast_path = fp
                first.run(split)
                first.quiesce()
                state = first.snapshot()
                second = make_core(workload, config_key)
                second.fetch.use_block_fast_path = fp
                second.restore(state)
                second.run(TOTAL)
                results[fp] = (state, fingerprint(second))
            assert results[True] == results[False], f"split at {split}"

    def test_obs_event_stream_identical_across_fast_path(self, workload,
                                                         config_key):
        """Block-batched allocation must replay the exact per-uop event
        stream: every recorded event tuple and every occupancy histogram
        matches the per-uop reference path."""
        from repro.obs import EventRecorder
        streams = {}
        for fp in (True, False):
            core = make_core(workload, config_key)
            core.fetch.use_block_fast_path = fp
            recorder = EventRecorder()
            core.attach_obs(recorder)
            core.run(TOTAL)
            assert recorder.dropped == 0
            streams[fp] = (list(recorder.events),
                           {k: dict(h.buckets)
                            for k, h in recorder.occupancy.items()})
        assert streams[True][0] == streams[False][0]
        assert streams[True][1] == streams[False][1]

    def test_apf_restores_fire_with_fast_path_on(self, workload,
                                                 config_key):
        """The APF capture/restore boundary is a fast-path fallback
        trigger; restores must still fire (and agree with the per-uop
        path) when batch allocation is active."""
        if config_key != "apf":
            pytest.skip("restore boundary only exists with APF on")
        fast = make_core(workload, config_key)
        fast.run(TOTAL)
        assert fast.stats.counters["apf_restores"] > 0
        slow = make_core(workload, config_key)
        slow.fetch.use_block_fast_path = False
        slow.run(TOTAL)
        assert (slow.stats.counters["apf_restores"]
                == fast.stats.counters["apf_restores"])


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config_key", ["base", "apf"])
class TestSkipWindowDebugMode:
    """`REPRO_DEBUG_SKIPS=1` re-derives every next_wakeup contract over
    each skipped window; a full run under the mode is a regression test
    that no stage under-reports its wakeup."""

    def test_debug_mode_passes_and_stays_identical(self, workload,
                                                   config_key,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_SKIPS", "1")
        checked = make_core(workload, config_key)
        assert checked._debug_skips
        checked.run(TOTAL)
        monkeypatch.setenv("REPRO_DEBUG_SKIPS", "0")
        plain = make_core(workload, config_key)
        assert not plain._debug_skips
        plain.run(TOTAL)
        assert fingerprint(checked) == fingerprint(plain)


@pytest.mark.parametrize("workload", ["leela", "tc"])
@pytest.mark.parametrize("config_key", ["base", "apf"])
class TestRetireBatching:
    """The batched retire drain (one ROB-prefix pass with locally
    accumulated counter deltas) must be invisible: warmup-boundary
    snapshots, quiesce/restore state, and APF restore accounting all
    match the per-cycle reference driver bit-exactly, including when
    the boundary in question lands strictly inside a retire batch."""

    def test_warmup_crossing_mid_batch(self, workload, config_key):
        """Sweep the warmup target across one retire-width span so at
        least one target lands mid-batch; the flush-before-_cross_warmup
        path must leave the boundary snapshot identical to the per-cycle
        driver's."""
        width = CONFIGS[config_key]().backend.retire_width
        for warmup in range(2_000, 2_000 + width + 1, max(1, width // 3)):
            ref = make_core(workload, config_key)
            ref.run(TOTAL, warmup=warmup, cycle_by_cycle=True)
            skip = make_core(workload, config_key)
            skip.run(TOTAL, warmup=warmup)
            assert fingerprint(skip) == fingerprint(ref), warmup
            for key in ("retired_loads", "retired_stores",
                        "cond_mispredicts", "apf_restores"):
                assert skip.measured(key) == ref.measured(key), (warmup,
                                                                 key)

    def test_batch_deltas_survive_snapshot_restore(self, workload,
                                                   config_key):
        """Load/store queue releases and the H2P decrement clock are
        flushed from batch-local deltas; a quiesce/snapshot/restore
        boundary right after a retire-heavy window must round-trip them
        identically under both drivers."""
        split = TOTAL // 3
        finals = {}
        for mode, cycle_by_cycle in (("ref", True), ("skip", False)):
            first = make_core(workload, config_key)
            first.run(split, cycle_by_cycle=cycle_by_cycle)
            first.quiesce()
            state = first.snapshot()
            # quiesce drained the pipeline: every batched queue-release
            # delta must have been flushed back into the live counts
            assert first.load_count == 0
            assert first.store_count == 0
            second = make_core(workload, config_key)
            second.restore(state)
            second.run(TOTAL, cycle_by_cycle=cycle_by_cycle)
            finals[mode] = fingerprint(second)
        assert finals["skip"] == finals["ref"]

    def test_no_out_of_order_retire(self, workload, config_key,
                                    monkeypatch):
        """The silent ``inflight.remove`` fallback is now counted; on
        every normal run the counter stays zero and the debug-mode
        assertion never fires (branches retire in fetch order)."""
        monkeypatch.setenv("REPRO_DEBUG_SKIPS", "1")
        core = make_core(workload, config_key)
        core.run(TOTAL)
        assert core._c_retire_out_of_order.value == 0
        assert core.stats.counters.get("retire_out_of_order", 0) == 0


def test_skip_window_checker_catches_stale_wakeup():
    """The debug checker must actually fire on a violated contract: a
    pending resolution event inside a claimed-idle window is the classic
    stale-wakeup bug shape."""
    core = make_core("leela", "base")
    core.run(500)
    core.events.insert(0, (core.now + 3, 0, object()))
    with pytest.raises(AssertionError, match="branch resolution"):
        core._verify_skip_window(core.now + 1, core.now + 5)
