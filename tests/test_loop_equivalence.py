"""Golden equivalence: the event-driven cycle-skipping loop must be
bit-identical to the per-cycle reference loop.

The skip loop (``run(..., cycle_by_cycle=False)``, the default) jumps
``now`` across provably idle windows and batch-increments the stall
counters those windows would have produced. These tests pin the
non-negotiable invariant from the optimization: cycles, retired count,
and the *entire* statistics snapshot are equal between the two loops —
straight runs, warmed-up runs, and runs split by a
quiesce/snapshot/restore boundary.
"""

import pytest

from repro.common.config import small_core_config
from repro.core.ooo_core import OoOCore
from repro.workloads.profiles import build_workload, workload_trace

WORKLOADS = ["leela", "mcf", "tc"]
CONFIGS = {
    "base": lambda: small_core_config(),
    "apf": lambda: small_core_config().with_apf(),
}
TOTAL = 6_000
SEED = 7


def make_core(workload, config_key):
    program = build_workload(workload)
    trace = workload_trace(workload, TOTAL)
    return OoOCore(CONFIGS[config_key](), program, trace, seed=SEED)


def fingerprint(core):
    return {
        "now": core.now,
        "retired": core.retired,
        "counters": core.stats.counters,
        "ipc": core.ipc(),
    }


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config_key", ["base", "apf"])
class TestLoopEquivalence:
    def test_straight_run(self, workload, config_key):
        ref = make_core(workload, config_key)
        ref.run(TOTAL, cycle_by_cycle=True)
        skip = make_core(workload, config_key)
        skip.run(TOTAL)
        assert fingerprint(skip) == fingerprint(ref)

    def test_warmup_run(self, workload, config_key):
        """Warmup gates stat collection; the measured() deltas and final
        snapshots must still match exactly."""
        warmup = 2_000
        ref = make_core(workload, config_key)
        ref.run(TOTAL, warmup=warmup, cycle_by_cycle=True)
        skip = make_core(workload, config_key)
        skip.run(TOTAL, warmup=warmup)
        assert fingerprint(skip) == fingerprint(ref)
        for key in ("recoveries", "cond_mispredicts", "stall_rob",
                    "stall_ftq_full"):
            assert skip.measured(key) == ref.measured(key)

    def test_across_snapshot_restore(self, workload, config_key):
        """Run to a split point, quiesce, snapshot, restore into a fresh
        core, and continue — both loops must agree at the boundary (the
        full snapshot dict) and at the end."""
        split = TOTAL // 2
        boundaries = {}
        finals = {}
        for mode, cycle_by_cycle in (("ref", True), ("skip", False)):
            first = make_core(workload, config_key)
            first.run(split, cycle_by_cycle=cycle_by_cycle)
            first.quiesce()
            state = first.snapshot()
            boundaries[mode] = state
            second = make_core(workload, config_key)
            second.restore(state)
            second.run(TOTAL, cycle_by_cycle=cycle_by_cycle)
            finals[mode] = fingerprint(second)
        assert boundaries["skip"] == boundaries["ref"]
        assert finals["skip"] == finals["ref"]
