"""Tests for the statistics additions shipped with the sampling
subsystem: ConfidenceInterval / Student-t, Histogram.percentile, the
in-place StatGroup.reset regression, and SimResult's Table II metric
helpers (including their zero-denominator paths)."""

import math

import pytest

from repro.common.statistics import (
    ConfidenceInterval,
    Histogram,
    StatGroup,
    StatisticsError,
    geomean,
    student_t_critical,
)
from repro.core.simulator import SimResult


class TestStudentT:
    def test_known_critical_values(self):
        # classic table values, two-sided 95%
        assert student_t_critical(1, 0.95) == pytest.approx(12.706, abs=0.01)
        assert student_t_critical(9, 0.95) == pytest.approx(2.262, abs=0.01)
        assert student_t_critical(30, 0.95) == pytest.approx(2.042, abs=0.01)

    def test_approaches_normal_for_large_df(self):
        assert student_t_critical(10_000, 0.95) == pytest.approx(1.96,
                                                                 abs=0.02)

    def test_monotone_in_confidence(self):
        assert student_t_critical(5, 0.99) > student_t_critical(5, 0.95) \
            > student_t_critical(5, 0.90)


class TestConfidenceInterval:
    def test_from_samples_matches_hand_computation(self):
        values = [10.0, 12.0, 14.0, 16.0]
        ci = ConfidenceInterval.from_samples(values, 0.95)
        mean = 13.0
        sd = math.sqrt(sum((v - mean) ** 2 for v in values) / 3)
        expected_half = student_t_critical(3, 0.95) * sd / 2.0
        assert ci.mean == pytest.approx(mean)
        assert ci.half_width == pytest.approx(expected_half)
        assert ci.samples == 4

    def test_bounds_and_contains(self):
        ci = ConfidenceInterval(10.0, 1.5, 0.95, 9)
        assert ci.low == 8.5 and ci.high == 11.5
        assert ci.contains(10.0) and ci.contains(8.5) and ci.contains(11.5)
        assert not ci.contains(8.49)
        assert ci.relative_half_width() == pytest.approx(0.15)

    def test_degenerate_cases(self):
        single = ConfidenceInterval.from_samples([3.0])
        assert single.half_width == 0.0 and single.samples == 1
        with pytest.raises(ValueError):
            ConfidenceInterval.from_samples([])


class TestHistogramPercentile:
    def test_nearest_rank(self):
        hist = Histogram()
        for bucket, count in ((1, 5), (2, 3), (10, 2)):
            hist.add(bucket, count)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == 1.0
        assert hist.percentile(51) == 2.0
        assert hist.percentile(80) == 2.0
        assert hist.percentile(90) == 10.0
        assert hist.percentile(100) == 10.0

    def test_empty_histogram_raises_documented_error(self):
        """Regression: percentile() on an empty histogram used to return
        0.0 — a fabricated sample indistinguishable from a real bucket 0.
        It now raises StatisticsError (a ValueError subclass)."""
        hist = Histogram()
        with pytest.raises(StatisticsError, match="empty histogram"):
            hist.percentile(50)
        with pytest.raises(ValueError):
            hist.percentile(50)   # subclass contract for legacy callers

    def test_out_of_range_p(self):
        hist = Histogram()
        hist.add(1)
        with pytest.raises(StatisticsError, match=r"\[0, 100\]"):
            hist.percentile(-1)
        with pytest.raises(StatisticsError, match=r"\[0, 100\]"):
            hist.percentile(101)

    def test_single_bucket_boundaries(self):
        """p=0 and p=100 on a single-bucket histogram both resolve to
        that bucket — the rank clamp keeps float rounding from walking
        past the end."""
        hist = Histogram()
        hist.add(7, 3)
        assert hist.percentile(0) == 7.0
        assert hist.percentile(50) == 7.0
        assert hist.percentile(100) == 7.0

    def test_p100_lands_on_last_bucket_despite_rounding(self):
        hist = Histogram()
        # 3 buckets x 7 samples: ceil(21 * 100 / 100) must clamp to 21
        for bucket in (1, 2, 3):
            hist.add(bucket, 7)
        assert hist.percentile(100) == 3.0
        assert hist.percentile(100.0) == 3.0


class TestGeomeanHardening:
    def test_positive_values(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([1.0]) == 1.0

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0

    def test_zero_raises_documented_error(self):
        with pytest.raises(StatisticsError, match="non-positive"):
            geomean([1.2, 0.0, 1.1])

    def test_negative_raises_with_position(self):
        with pytest.raises(StatisticsError, match="position 2"):
            geomean([1.2, 1.1, -0.5])

    def test_is_a_value_error(self):
        with pytest.raises(ValueError):
            geomean([0.0])


class TestStatGroupReset:
    def test_reset_preserves_cached_histogram_objects(self):
        """Regression: reset() used to call histograms.clear(), detaching
        any Histogram object a component had cached from histogram() —
        its writes were then silently lost."""
        group = StatGroup("core")
        cached = group.histogram("refill_saved")
        cached.add(3)
        group.incr("recoveries")

        group.reset()
        assert group.get("recoveries") == 0
        assert cached.total() == 0
        # the component keeps writing into its cached object...
        cached.add(7, 2)
        # ...and the group still reports those writes
        assert group.histogram("refill_saved") is cached
        assert group.histogram("refill_saved").total() == 2

    def test_state_load_state_roundtrip(self):
        group = StatGroup("x")
        group.incr("a", 4)
        group.histogram("h").add(2, 3)
        saved = group.state()
        group.incr("a", 1)
        group.histogram("h").add(5)
        group.load_state(saved)
        assert group.get("a") == 4
        assert group.histogram("h").as_dict() == {2: 3}


def make_result(counters=None, mispredicts=100):
    return SimResult(workload="w", instructions=1000, cycles=500, ipc=2.0,
                     branch_mpki=0.0, cond_branches=200,
                     cond_mispredicts=mispredicts,
                     counters=counters or {})


class TestTableTwoHelpers:
    def test_specificity(self):
        result = make_result({"h2p_marked_mis": 80}, mispredicts=100)
        assert result.specificity() == pytest.approx(0.8)
        # marker argument selects the counter family
        result = make_result({"lowconf_marked_mis": 25}, mispredicts=100)
        assert result.specificity("lowconf") == pytest.approx(0.25)

    def test_specificity_zero_mispredicts(self):
        result = make_result({"h2p_marked_mis": 0}, mispredicts=0)
        assert result.specificity() == 0.0

    def test_wastage(self):
        result = make_result({"h2p_marked": 200, "h2p_marked_mis": 80})
        assert result.wastage() == pytest.approx(0.6)

    def test_wastage_zero_marked(self):
        result = make_result({"h2p_marked": 0, "h2p_marked_mis": 0})
        assert result.wastage() == 0.0

    def test_apf_conflict_fraction(self):
        result = make_result({"apf_bank_conflict_cycles": 30,
                              "apf_active_cycles": 120})
        assert result.apf_conflict_fraction() == pytest.approx(0.25)

    def test_apf_conflict_fraction_zero_active(self):
        result = make_result({"apf_bank_conflict_cycles": 0,
                              "apf_active_cycles": 0})
        assert result.apf_conflict_fraction() == 0.0

    def test_speedup_over(self):
        fast, slow = make_result(), make_result()
        slow.ipc = 1.0
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        slow.ipc = 0.0
        with pytest.raises(ValueError):
            fast.speedup_over(slow)
