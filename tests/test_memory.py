"""Cache, hierarchy, DRAM, and TLB tests."""

from repro.common.config import (
    CacheConfig,
    DramConfig,
    MemoryConfig,
    TLBConfig,
)
from repro.memory.cache import Cache, CacheHierarchy
from repro.memory.dram import Dram
from repro.memory.tlb import TLB


def small_cache(**overrides):
    defaults = dict(size_bytes=1024, line_bytes=64, associativity=2,
                    hit_latency=3)
    defaults.update(overrides)
    return Cache(CacheConfig("test", **defaults), miss_latency=50)


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x100) == 3 + 50
        assert cache.access(0x100) == 3
        assert cache.stats.get("misses") == 1
        assert cache.stats.get("hits") == 1

    def test_same_line_hits(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.access(0x13F) == 3   # same 64B line

    def test_lru_eviction(self):
        cache = small_cache()  # 8 sets, 2 ways
        set_stride = 8 * 64
        a, b, c = 0x0, set_stride, 2 * set_stride  # same set
        cache.access(a)
        cache.access(b)
        cache.access(a)        # a is MRU
        cache.access(c)        # evicts b
        assert cache.access(a) == 3
        assert cache.access(c) == 3
        assert cache.access(b) > 3

    def test_probe_does_not_allocate(self):
        cache = small_cache()
        assert not cache.probe(0x200)
        assert not cache.probe(0x200)
        cache.access(0x200)
        assert cache.probe(0x200)

    def test_flush(self):
        cache = small_cache()
        cache.access(0x40)
        cache.flush()
        assert not cache.probe(0x40)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5

    def test_miss_goes_to_next_level(self):
        l2 = small_cache(size_bytes=4096)
        l1 = Cache(CacheConfig("l1", 512, associativity=2, hit_latency=2),
                   next_level=l2)
        latency = l1.access(0x1000)
        assert latency == 2 + 3 + 50
        assert l2.stats.get("accesses") == 1
        # now L1 hit: L2 untouched
        l1.access(0x1000)
        assert l2.stats.get("accesses") == 1


class TestHierarchy:
    def test_ifetch_prefetches_next_line(self):
        hierarchy = CacheHierarchy(MemoryConfig())
        hierarchy.ifetch(0x400000)
        assert hierarchy.icache.probe(0x400040)

    def test_dram_charged_only_on_llc_miss(self):
        hierarchy = CacheHierarchy(MemoryConfig())
        first = hierarchy.dload(0x10_0000, cycle=0)
        second = hierarchy.dload(0x10_0000, cycle=10)
        assert first > second
        assert hierarchy.dram.stats.get("accesses") == 1

    def test_store_counts_as_write(self):
        hierarchy = CacheHierarchy(MemoryConfig())
        hierarchy.dstore(0x40, cycle=0)
        assert hierarchy.dcache.stats.get("writes") == 1


class TestDram:
    def test_row_hit_cheaper_than_conflict(self):
        dram = Dram(DramConfig())
        cfg = DramConfig()
        first = dram.access(0x0, cycle=1000)       # row miss (bank empty)
        hit = dram.access(0x40, cycle=3000)        # same row: row hit
        conflict = dram.access(cfg.row_bytes * cfg.num_banks,
                               cycle=6000)         # same bank, new row
        assert first == cfg.channel_latency + cfg.t_row_miss
        assert hit == cfg.channel_latency + cfg.t_row_hit
        assert conflict == cfg.channel_latency + cfg.t_row_conflict

    def test_busy_bank_queues(self):
        dram = Dram(DramConfig())
        dram.access(0x0, cycle=0)
        latency = dram.access(0x40, cycle=0)   # same cycle, same bank
        cfg = DramConfig()
        assert latency > cfg.channel_latency + cfg.t_row_hit

    def test_stats_classify_accesses(self):
        dram = Dram(DramConfig())
        dram.access(0x0, 0)
        dram.access(0x40, 500)
        assert dram.stats.get("row_misses") == 1
        assert dram.stats.get("row_hits") == 1


class TestTLB:
    def test_hit_after_fill(self):
        tlb = TLB(TLBConfig(entries=4, miss_latency=20))
        assert tlb.access(0x1000) == 20
        assert tlb.access(0x1FFF) == 0    # same page

    def test_capacity_eviction_lru(self):
        tlb = TLB(TLBConfig(entries=2, miss_latency=20))
        tlb.access(0x1000)
        tlb.access(0x2000)
        tlb.access(0x1000)      # refresh page 1
        tlb.access(0x3000)      # evicts page 2
        assert tlb.access(0x2000) == 20
