"""Focused tests on tricky core paths: partial-bundle flushes, fetch-scheme
accounting, banked-stat plumbing, and stall counters."""

import dataclasses

from repro.common.config import FetchScheme, small_core_config
from repro.core.ooo_core import OoOCore
from repro.workloads.profiles import build_workload, workload_trace


def make_core(workload="leela", config=None, total=6_000):
    config = config or small_core_config()
    program = build_workload(workload)
    trace = workload_trace(workload, total)
    return OoOCore(config, program, trace, seed=7), total


class TestFlushDetails:
    def test_ftq_partial_bundle_truncated(self):
        """After every recovery, nothing younger than the recovered branch
        remains in the FTQ or the restore queue."""
        core, total = make_core(config=small_core_config().with_apf())
        original = core._flush_younger

        def wrapped(seq):
            original(seq)
            for bundle, index in core.ftq:
                for du in bundle.uops[index:]:
                    assert du.seq <= seq
            for _ready, du in core.restore_queue:
                assert du.seq <= seq
            for rec in core.inflight:
                assert rec.seq <= seq
        core._flush_younger = wrapped
        core.run(total)
        assert core.stats.get("recoveries") > 0

    def test_squashed_uops_marked(self):
        core, total = make_core()
        squashed_seqs = set()
        original = core._flush_younger

        def wrapped(seq):
            tail = [du for du in core.rob if du.seq > seq]
            original(seq)
            for du in tail:
                assert du.squashed
                squashed_seqs.add(du.seq)
        core._flush_younger = wrapped
        core.run(total)
        assert squashed_seqs

    def test_load_store_counts_never_negative(self):
        core, total = make_core("mcf", total=4_000)
        original = core._flush_younger

        def wrapped(seq):
            original(seq)
            assert core.load_count >= 0
            assert core.store_count >= 0
        core._flush_younger = wrapped
        core.run(total)


class TestFetchSchemeAccounting:
    def test_timeshare_records_alt_cycles(self):
        cfg = small_core_config().with_apf(
            fetch_scheme=FetchScheme.TIME_SHARED)
        core, total = make_core("leela", cfg)
        core.run(total)
        assert core.stats.get("timeshare_alt_cycles") > 0

    def test_banked_records_conflicts(self):
        cfg = small_core_config().with_apf(fetch_scheme=FetchScheme.BANKED)
        core, total = make_core("tc", cfg)
        core.run(total)
        assert core.stats.get("apf_bank_conflict_cycles") > 0

    def test_dualport_records_no_conflicts(self):
        cfg = small_core_config().with_apf(
            fetch_scheme=FetchScheme.DUAL_PORT)
        core, total = make_core("tc", cfg)
        core.run(total)
        assert core.stats.get("apf_bank_conflict_cycles") == 0

    def test_banked_baseline_uses_banked_predictor(self):
        from repro.branch.banking import BankedTage
        cfg = dataclasses.replace(small_core_config(),
                                  baseline_tage_banks=4)
        core, _ = make_core("xz", cfg)
        assert isinstance(core.branch_unit.predictor, BankedTage)
        assert core.branch_unit.num_banks == 4

    def test_apf_banked_uses_apf_bank_count(self):
        cfg = small_core_config().with_apf(tage_banks=8)
        core, _ = make_core("xz", cfg)
        assert core.branch_unit.num_banks == 8

    def test_unknown_predictor_kind_rejected(self):
        import pytest
        cfg = dataclasses.replace(small_core_config(),
                                  predictor_kind="neural")
        program = build_workload("xz")
        trace = workload_trace("xz", 1_000)
        with pytest.raises(ValueError, match="neural"):
            OoOCore(cfg, program, trace)


class TestStallCounters:
    def test_stall_counters_populated(self):
        core, total = make_core("mcf", total=5_000)
        core.run(total)
        stats = core.stats
        # at least some backpressure shows up on a memory-bound workload
        assert (stats.get("stall_rob_full") + stats.get("stall_ftq_full")
                + stats.get("stall_scheduler_full")
                + stats.get("stall_lq_full")) > 0

    def test_misfetch_counter_counts_cold_btb(self):
        core, total = make_core("xz", total=3_000)
        core.run(total)
        assert core.stats.get("btb_misfetches") > 0

    def test_icache_stalls_on_large_footprint(self):
        core, total = make_core("exchange2", total=5_000)
        core.run(total)
        assert core.stats.get("icache_miss_stall_cycles") > 0


class TestWarmupWindowing:
    def test_measured_window_excludes_warmup(self):
        core, total = make_core("xz", total=6_000)
        core.warmup_target = 0
        core.run(6_000, warmup=2_000)
        assert core.measured_instructions() == 4_000
        assert 0 < core.measured_cycles() < core.now

    def test_counters_windowed(self):
        core, _ = make_core("leela", total=6_000)
        core.run(6_000, warmup=3_000)
        assert core.measured("cond_branches") \
            < core.stats.get("cond_branches")
