"""Tests for the subtlest APF mechanism: validating buffered alternate-path
uops against the architectural trace at restore time.

When a buffered path contains a branch whose *shadow* prediction was wrong,
everything after it in the buffer is wrong-path; the embedded branch must
later resolve and recover through the normal machinery (Section V-G's
behaviour, emergent rather than special-cased)."""

from repro.common.config import small_core_config
from repro.core.ooo_core import OoOCore
from repro.workloads.profiles import build_workload, workload_trace


def run_instrumented(workload="leela", total=15_000):
    config = small_core_config().with_apf()
    program = build_workload(workload)
    trace = workload_trace(workload, total)
    core = OoOCore(config, program, trace, seed=5)

    observations = {
        "restores": 0,
        "restores_with_wrong_tail": 0,
        "restored_wrong_uops": 0,
        "restored_correct_uops": 0,
        "embedded_mispredicts": 0,
        "embedded_recoveries": 0,
    }

    original_restore = core._restore_from_buffer

    def wrapped_restore(rec, buffer):
        queued_before = len(core.restore_queue)
        original_restore(rec, buffer)
        observations["restores"] += 1
        new = [du for _r, du in list(core.restore_queue)[queued_before:]]
        wrong = [du for du in new if du.wrong_path]
        observations["restored_wrong_uops"] += len(wrong)
        observations["restored_correct_uops"] += len(new) - len(wrong)
        if wrong:
            observations["restores_with_wrong_tail"] += 1
        # every wrong-path restored uop must be preceded by an embedded
        # mispredicted branch in the same restore batch
        if wrong:
            first_wrong = min(du.seq for du in wrong)
            embedded = [du for du in new
                        if du.branch is not None and du.branch.mispredict
                        and du.seq < first_wrong]
            assert embedded, ("wrong-path restored uops without a guarding "
                              "embedded mispredicted branch")
        for du in new:
            if du.branch is not None and du.branch.mispredict:
                observations["embedded_mispredicts"] += 1
        return None

    core._restore_from_buffer = wrapped_restore
    core.run(total)
    return core, observations


class TestRestoreValidation:
    def test_restored_uops_split_correct_and_wrong(self):
        core, obs = run_instrumented()
        assert obs["restores"] > 0
        assert obs["restored_correct_uops"] > 0
        # shadow predictions are good but not perfect: some restores carry
        # a wrong-path tail on a high-MPKI workload
        assert obs["restores_with_wrong_tail"] > 0
        assert obs["embedded_mispredicts"] > 0

    def test_wrong_tail_is_contiguous_suffix(self):
        """Within one restore, wrong-path uops always form a suffix."""
        config = small_core_config().with_apf()
        program = build_workload("leela")
        trace = workload_trace("leela", 12_000)
        core = OoOCore(config, program, trace, seed=5)
        original = core._restore_from_buffer

        def wrapped(rec, buffer):
            before = len(core.restore_queue)
            original(rec, buffer)
            new = [du for _r, du in list(core.restore_queue)[before:]]
            seen_wrong = False
            for du in new:
                if du.wrong_path:
                    seen_wrong = True
                else:
                    assert not seen_wrong, \
                        "correct-path uop after wrong-path in a restore"
        core._restore_from_buffer = wrapped
        core.run(12_000)

    def test_run_completes_despite_embedded_mispredicts(self):
        core, obs = run_instrumented()
        assert core.retired == 15_000

    def test_restore_ready_cycles_are_staged(self):
        """Restored uops become allocatable in 8-uop groups, one group per
        cycle, starting after depth - apf_depth cycles (Section V-G)."""
        config = small_core_config().with_apf()
        program = build_workload("leela")
        trace = workload_trace("leela", 12_000)
        core = OoOCore(config, program, trace, seed=5)
        offset = config.frontend.depth - config.apf.pipeline_depth
        original = core._restore_from_buffer

        def wrapped(rec, buffer):
            before = len(core.restore_queue)
            now = core.now
            original(rec, buffer)
            new = list(core.restore_queue)[before:]
            for position, (ready, _du) in enumerate(new):
                expected = now + offset + position // 8
                assert ready == expected
        core._restore_from_buffer = wrapped
        core.run(12_000)
