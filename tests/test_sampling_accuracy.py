"""Acceptance test for the sampling subsystem's accuracy claim.

Drives ``benchmarks/bench_sampling_accuracy.py`` at the small-scale
window regardless of environment: on every workload the sampled run
(>=8 intervals over a 4x longer trace) must reproduce the dense IPC
within its own 95% confidence interval and within +-3%, while executing
fewer detailed cycles than the dense run over the same trace.

This is the most expensive test in the suite (it simulates 260k
instructions per workload twice); results land in the shared on-disk
bench cache, so re-runs are cheap.
"""

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import bench_sampling_accuracy as bench          # noqa: E402
from repro.workloads.profiles import ALL_NAMES   # noqa: E402

SMALL_WINDOW = 65_000   # small-scale warmup + measure


def test_sampled_matches_dense_on_every_workload():
    plan, rows = bench.accuracy_rows(window=SMALL_WINDOW)

    assert plan.intervals >= 8
    assert plan.total_instructions >= 4 * SMALL_WINDOW
    assert {row["workload"] for row in rows} == set(ALL_NAMES)

    failures = []
    for row in rows:
        problems = []
        if abs(row["error"]) > bench.ERROR_BUDGET:
            problems.append(f"error {100 * row['error']:+.2f}%")
        if not row["within_ci"]:
            problems.append("dense IPC outside sampled CI")
        if not row["detailed_cycles"] < row["dense_cycles"]:
            problems.append("sampled run not cheaper than dense")
        if row["intervals"] < 8:
            problems.append(f"only {row['intervals']} intervals")
        if problems:
            failures.append(f"{row['workload']}: {', '.join(problems)}")
    assert not failures, "; ".join(failures)
