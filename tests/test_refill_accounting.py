"""Tests for Fig. 10's accounting: how each misprediction recovery is
classified into re-fill-savings buckets."""

from repro.common.config import small_core_config
from repro.core.ooo_core import OoOCore
from repro.workloads.profiles import build_workload, workload_trace


def run_core(workload="leela", total=10_000, apf=True):
    config = small_core_config().with_apf() if apf else small_core_config()
    program = build_workload(workload)
    trace = workload_trace(workload, total)
    core = OoOCore(config, program, trace, seed=5)
    core.run(total)
    return core


class TestRefillHistogram:
    def test_histogram_total_matches_recoveries(self):
        core = run_core()
        hist = core.stats.histogram("refill_saved")
        # every conditional-branch recovery lands in exactly one bucket
        assert hist.total() <= core.stats.get("recoveries")
        assert hist.total() > 0

    def test_buckets_bounded_by_depth(self):
        core = run_core()
        depth = core.config.apf.pipeline_depth
        hist = core.stats.histogram("refill_saved")
        assert all(-1 <= bucket <= depth for bucket in hist.buckets)

    def test_unmarked_bucket_exists(self):
        """Some mispredictions come from branches never marked H2P (warm-up
        and capacity effects — the paper's 'small percentage')."""
        core = run_core()
        hist = core.stats.histogram("refill_saved")
        assert hist.buckets.get(-1, 0) > 0

    def test_no_apf_means_no_positive_buckets(self):
        core = run_core(apf=False)
        hist = core.stats.histogram("refill_saved")
        assert all(bucket <= 0 for bucket in hist.buckets)

    def test_saved_cycles_correlate_with_restored_uops(self):
        """Restores deliver roughly 8 uops per saved fetch cycle."""
        core = run_core()
        hist = core.stats.histogram("refill_saved")
        saved_cycles = sum(b * c for b, c in hist.buckets.items() if b > 0)
        restored = core.stats.get("apf_restored_uops")
        assert restored > 0
        width = core.config.frontend.width
        # restored uops can't exceed saved fetch cycles * width (buffers
        # hold at most 8 uops per fetched cycle)
        assert restored <= (saved_cycles + hist.total()) * width

    def test_deeper_pipe_saves_more_per_branch(self):
        shallow_cfg = small_core_config().with_apf(
            pipeline_depth=5, buffer_capacity_uops=40)
        deep_cfg = small_core_config().with_apf()
        program = build_workload("leela")
        trace = workload_trace("leela", 10_000)
        shallow = OoOCore(shallow_cfg, program, trace, seed=5)
        shallow.run(10_000)
        deep = OoOCore(deep_cfg, program, trace, seed=5)
        deep.run(10_000)
        mean_shallow = shallow.stats.histogram("refill_saved").mean()
        mean_deep = deep.stats.histogram("refill_saved").mean()
        assert mean_deep > mean_shallow
