"""Tests for gshare, BTB, RAS/ShadowRAS, H2P table, indirect predictor,
history registers, and banking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.branch.banking import (
    BankedTage,
    fetch_banks_touched,
    icache_bank_bits,
    tage_bank_bits,
)
from repro.branch.btb import BTB
from repro.branch.gshare import Gshare
from repro.branch.h2p import H2PTable
from repro.branch.history import SpeculativeHistory
from repro.branch.indirect import IndirectPredictor
from repro.branch.ras import ReturnAddressStack, ShadowRAS
from repro.common.config import BTBConfig, GshareConfig, H2PTableConfig, TageConfig
from repro.isa.opcodes import BranchKind


class TestHistory:
    def test_push_shifts_in_outcomes(self):
        hist = SpeculativeHistory(8)
        hist.push(True)
        hist.push(False)
        hist.push(True)
        assert hist.ghr == 0b101

    def test_bounded_by_max_length(self):
        hist = SpeculativeHistory(4)
        for _ in range(10):
            hist.push(True)
        assert hist.ghr == 0b1111

    def test_checkpoint_restore(self):
        hist = SpeculativeHistory(16)
        hist.push(True, 0x40)
        snap = hist.checkpoint()
        hist.push(False, 0x44)
        hist.push(False, 0x48)
        hist.restore(snap)
        assert hist.checkpoint() == snap

    def test_snapshot_with_does_not_mutate(self):
        hist = SpeculativeHistory(16)
        hist.push(True, 0x40)
        before = hist.checkpoint()
        snap = hist.snapshot_with(True, 0x44)
        assert hist.checkpoint() == before
        hist.push(True, 0x44)
        assert hist.checkpoint() == snap

    def test_copy_from(self):
        a, b = SpeculativeHistory(16), SpeculativeHistory(16)
        a.push(True, 4)
        a.push(False, 8)
        b.copy_from(a)
        assert b.checkpoint() == a.checkpoint()


class TestFoldedHistories:
    """The O(1)-per-push maintained folds must stay bit-identical to
    ``fold_xor`` recomputation of the masked registers — across pushes,
    checkpoint/restore, adopt_folds, and copy_from."""

    GHR_SPECS = [(4, 10), (7, 10), (13, 11), (24, 10), (43, 11),
                 (78, 10), (141, 11), (256, 10), (5, 10), (11, 10),
                 (1, 1), (3, 8), (9, 9)]
    PATH_SPECS = [(8, 10), (14, 11), (16, 10), (2, 2), (32, 7)]

    @staticmethod
    def _expect(hist, specs, register):
        from repro.common.bitops import fold_xor, mask
        return [fold_xor(register & mask(length), length, width)
                for (length, width) in specs]

    def _check(self, hist):
        gv, pv = hist.folds
        assert list(gv) == self._expect(hist, self.GHR_SPECS, hist.ghr)
        assert list(pv) == self._expect(hist, self.PATH_SPECS, hist.path)

    def test_folds_track_recomputation_under_random_pushes(self):
        import random
        rng = random.Random(99)
        hist = SpeculativeHistory(256, path_length=16)
        hist.attach_folds(self.GHR_SPECS, self.PATH_SPECS)
        snapshots = []
        for step in range(2000):
            hist.push(rng.random() < 0.5, rng.randrange(1 << 20) << 2)
            if step % 37 == 0:
                snapshots.append(hist.checkpoint())
            if step % 101 == 100 and snapshots:
                hist.restore(snapshots[rng.randrange(len(snapshots))])
            self._check(hist)

    def test_checkpoint_carries_folds(self):
        hist = SpeculativeHistory(64)
        hist.attach_folds([(24, 10)], [(16, 10)])
        hist.push(True, 0x40)
        snap = hist.checkpoint()
        assert len(snap) == 4
        hist.push(False, 0x44)
        hist.restore(snap)
        assert hist.checkpoint() == snap
        # the restored fold values are the checkpoint's exact tuples
        # (immutable, so sharing is safe and the restore is O(1))
        assert hist.folds == (snap[2], snap[3])

    def test_adopt_folds_then_restore_matches(self):
        main = SpeculativeHistory(64)
        main.attach_folds(self.GHR_SPECS, self.PATH_SPECS)
        for i in range(50):
            main.push(i % 3 == 0, 0x1000 + 4 * i)
        snap = main.checkpoint()
        for i in range(10):
            main.push(True, 0x2000 + 4 * i)
        shadow = SpeculativeHistory(64)
        shadow.adopt_folds(main)
        shadow.restore(snap)
        assert shadow.checkpoint() == snap
        self._check(shadow)

    def test_unattached_history_keeps_two_tuple_checkpoints(self):
        hist = SpeculativeHistory(16)
        hist.push(True, 0x40)
        assert hist.folds is None
        assert len(hist.checkpoint()) == 2


class TestGshare:
    def test_learns_bias(self):
        predictor = Gshare(GshareConfig(log_size=10, history_length=8))
        hist = SpeculativeHistory(8)
        for _ in range(20):
            predictor.update(0x40, hist.ghr, True)
            hist.push(True, 0x40)
        assert predictor.predict(0x40, hist.ghr).taken

    def test_low_confidence_when_weak(self):
        predictor = Gshare(GshareConfig(log_size=10))
        pred = predictor.predict(0x40, 0)
        assert pred.low_confidence  # cold counter is weak

    def test_storage_bits(self):
        predictor = Gshare(GshareConfig(log_size=10, counter_bits=2))
        assert predictor.storage_bits() == (1 << 10) * 2


class TestBankHashes:
    @given(st.integers(min_value=0, max_value=(1 << 48) - 1),
           st.sampled_from([1, 2, 4, 8]))
    def test_bank_in_range(self, pc, banks):
        assert 0 <= tage_bank_bits(pc, banks) < banks

    def test_unsupported_bank_count(self):
        with pytest.raises(ValueError):
            tage_bank_bits(0x40, 3)

    def test_four_bank_hash_matches_table1(self):
        # PC word bits: set bit 0 only -> bit0 of bank = 1, bit1 = 0
        pc = 0b1 << 2
        assert tage_bank_bits(pc, 4) == 0b01
        # set word bit 2 -> bank bit1 = 1
        pc = 0b100 << 2
        assert tage_bank_bits(pc, 4) == 0b10

    def test_icache_bank_uses_bits_5_and_7(self):
        assert icache_bank_bits(0) == 0
        assert icache_bank_bits(1 << 5) == 1
        assert icache_bank_bits(1 << 7) == 2
        assert icache_bank_bits((1 << 5) | (1 << 7)) == 3

    def test_sequential_half_lines_hit_different_banks(self):
        """The baseline's 64B fetch never self-conflicts (Section V-B3)."""
        for base in range(0, 1 << 12, 64):
            banks = fetch_banks_touched(base, 64)
            assert len(banks) == len(set(banks))

    def test_fetch_within_half_line_touches_one_bank(self):
        assert len(fetch_banks_touched(0, 32)) == 1


class TestBankedTage:
    def test_storage_conserved(self):
        cfg = TageConfig(num_tables=4, table_log_size=10,
                         bimodal_log_size=12)
        single = BankedTage(cfg, 1)
        quad = BankedTage(cfg, 4)
        ratio = quad.storage_bits() / single.storage_bits()
        assert 0.8 < ratio < 1.3

    def test_routing_is_by_bank_hash(self):
        cfg = TageConfig(num_tables=4, table_log_size=8)
        banked = BankedTage(cfg, 4, seed=3)
        pc = 0x40
        bank = banked.bank_of(pc)
        hist = SpeculativeHistory(64)
        for _ in range(30):
            banked.update(pc, hist.ghr, True, hist.path)
            hist.push(True, pc)
        # only the routed bank learned the branch
        assert banked.banks[bank].predict(pc, hist.ghr, hist.path).taken

    def test_rejects_bad_bank_count(self):
        with pytest.raises(ValueError):
            BankedTage(TageConfig(), 5)


class TestBTB:
    def make(self, entries=64, assoc=4):
        return BTB(BTBConfig(entries=entries, associativity=assoc))

    def test_miss_then_hit(self):
        btb = self.make()
        assert btb.lookup(0x1000) is None
        btb.insert(0x1000, BranchKind.DIRECT_JUMP, 0x2000)
        assert btb.lookup(0x1000) == (BranchKind.DIRECT_JUMP, 0x2000)

    def test_two_branches_same_region(self):
        btb = self.make()
        btb.insert(0x1000, BranchKind.CONDITIONAL, 0x1100)
        btb.insert(0x1020, BranchKind.CALL, 0x3000)
        assert btb.lookup(0x1000) == (BranchKind.CONDITIONAL, 0x1100)
        assert btb.lookup(0x1020) == (BranchKind.CALL, 0x3000)

    def test_eviction_lru(self):
        btb = self.make(entries=8, assoc=2)   # 4 sets
        regions = [0x1000 + i * 64 * 4 for i in range(3)]  # same set
        for region in regions:
            btb.insert(region, BranchKind.DIRECT_JUMP, region + 4)
        # first inserted should have been evicted
        assert btb.lookup(regions[0]) is None
        assert btb.lookup(regions[2]) is not None

    def test_miss_counter(self):
        btb = self.make()
        btb.lookup(0x40)
        assert btb.misses == 1


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_checkpoint_restore(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        snap = ras.checkpoint()
        ras.push(2)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.pop() == 1


class TestShadowRAS:
    def test_overlay_pops_before_main(self):
        main = ReturnAddressStack(8)
        main.push(0xAAA)
        shadow = ShadowRAS(main, entries=4)
        shadow.push(0xBBB)
        assert shadow.pop() == 0xBBB
        assert shadow.pop() == 0xAAA   # falls through to main snapshot
        assert shadow.pop() is None

    def test_main_not_disturbed(self):
        main = ReturnAddressStack(8)
        main.push(0xAAA)
        shadow = ShadowRAS(main, entries=4)
        shadow.pop()
        assert main.peek() == 0xAAA

    def test_apply_to_main_replays_calls(self):
        main = ReturnAddressStack(8)
        main.push(0x1)
        main.push(0x2)
        shadow = ShadowRAS(main, entries=4)
        assert shadow.pop() == 0x2      # alternate path returned once
        shadow.push(0x3)                # then called
        shadow.apply_to_main(main)
        assert main.pop() == 0x3
        assert main.pop() == 0x1
        assert main.pop() is None

    def test_state_roundtrip(self):
        main = ReturnAddressStack(8)
        main.push(7)
        shadow = ShadowRAS(main, entries=4)
        shadow.push(9)
        shadow.pop()
        shadow.pop()
        state = shadow.state()
        fresh = ShadowRAS(main, entries=4)
        fresh.load_state(state)
        assert fresh.state() == state

    def test_overlay_capacity(self):
        main = ReturnAddressStack(8)
        shadow = ShadowRAS(main, entries=2)
        for value in (1, 2, 3):
            shadow.push(value)
        assert shadow.pop() == 3
        assert shadow.pop() == 2
        assert shadow.pop() is None   # 1 was dropped; main empty


class TestH2PTable:
    def make(self, **overrides):
        cfg = H2PTableConfig(**overrides)
        return H2PTable(cfg)

    def test_unknown_branch_not_h2p(self):
        table = self.make()
        assert not table.is_h2p(0x1234)
        assert table.counter(0x1234) == 0

    def test_becomes_h2p_after_enough_mispredicts(self):
        table = self.make(h2p_threshold=2)
        pc = 0x4040
        for _ in range(2):
            table.record_misprediction(pc)
        assert not table.is_h2p(pc)      # counter == 2, needs > threshold
        table.record_misprediction(pc)
        assert table.is_h2p(pc)

    def test_counter_saturates(self):
        table = self.make(counter_bits=3)
        for _ in range(20):
            table.record_misprediction(0x40)
        assert table.counter(0x40) == 7

    def test_two_branches_per_line(self):
        table = self.make()
        for _ in range(4):
            table.record_misprediction(0x1000)
            table.record_misprediction(0x1020)
        assert table.is_h2p(0x1000)
        assert table.is_h2p(0x1020)

    def test_third_branch_in_line_dropped(self):
        table = self.make()
        table.record_misprediction(0x1000)
        table.record_misprediction(0x1004)
        table.record_misprediction(0x1008)
        assert table.dropped_allocations == 1
        assert table.counter(0x1008) == 0

    def test_periodic_decrement(self):
        table = self.make(decrement_period=1000)
        for _ in range(4):
            table.record_misprediction(0x40)
        before = table.counter(0x40)
        table.tick_instructions(2500)
        assert table.counter(0x40) == before - 2

    def test_decrement_frees_entry_for_reallocation(self):
        table = self.make(decrement_period=100)
        table.record_misprediction(0x40)
        table.tick_instructions(100)
        assert table.counter(0x40) == 0
        # the freed slot can now host another branch in the same line
        table.record_misprediction(0x44)
        assert table.counter(0x44) == 1


class TestIndirectPredictor:
    def test_learns_last_target(self):
        predictor = IndirectPredictor()
        predictor.update(0x40, 0, 0x9000)
        assert predictor.predict(0x40, 0) == 0x9000

    def test_history_disambiguates_targets(self):
        predictor = IndirectPredictor()
        for _ in range(4):
            predictor.update(0x40, 0b0, 0x9000)
            predictor.update(0x40, 0b1, 0x9100)
        assert predictor.predict(0x40, 0b0) == 0x9000
        assert predictor.predict(0x40, 0b1) == 0x9100

    def test_unknown_returns_none(self):
        assert IndirectPredictor().predict(0x40, 0) is None
