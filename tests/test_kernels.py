"""Graph kernel validation: the uop-ISA kernels must compute the same
answers as reference implementations (networkx)."""

import networkx as nx
import pytest

from repro.isa.opcodes import Op
from repro.workloads.emulator import Emulator
from repro.workloads.graphs import (
    CSRGraph,
    bfs_reachable,
    power_law_graph,
    uniform_graph,
)
from repro.workloads.kernels import (
    build_bc,
    build_bfs,
    build_cc,
    build_pagerank,
    build_sssp,
    build_tc,
)


@pytest.fixture(scope="module")
def graph():
    return uniform_graph(64, 6, seed=5)


def to_networkx(graph: CSRGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_nodes))
    for u in range(graph.num_nodes):
        start, end = graph.row_ptr[u], graph.row_ptr[u + 1]
        for idx in range(start, end):
            g.add_edge(u, graph.col[idx], weight=graph.weight[idx])
    return g


def read_array(emu, program, name, count):
    base = program.arrays[name]
    return [emu.read_word(base + 8 * i) for i in range(count)]


class TestGraphGeneration:
    def test_csr_row_ptr_monotone(self, graph):
        assert graph.row_ptr[0] == 0
        assert all(b >= a for a, b in zip(graph.row_ptr, graph.row_ptr[1:]))
        assert graph.row_ptr[-1] == graph.num_edges

    def test_neighbors_sorted_unique(self, graph):
        for node in range(graph.num_nodes):
            neigh = graph.neighbors(node)
            assert neigh == sorted(set(neigh))
            assert node not in neigh

    def test_undirected_symmetry(self, graph):
        for u in range(graph.num_nodes):
            for v in graph.neighbors(u):
                assert u in graph.neighbors(v)

    def test_power_law_has_skewed_degrees(self):
        g = power_law_graph(512, 8, seed=3)
        degrees = sorted(g.degree(i) for i in range(g.num_nodes))
        assert degrees[-1] > 4 * max(1, degrees[len(degrees) // 2])

    def test_determinism(self):
        a = uniform_graph(128, 6, seed=9)
        b = uniform_graph(128, 6, seed=9)
        assert a.col == b.col and a.row_ptr == b.row_ptr

    def test_weights_positive(self, graph):
        assert all(w >= 1 for w in graph.weight)


class TestBfsKernel:
    def test_visited_set_matches_reference(self, graph):
        """After one complete traversal from source 0, the frontier queue
        holds exactly the reference reachable set."""
        program = build_bfs(graph)
        emu = Emulator(program)
        # sample the queue right before the source register (r16) advances
        snapshot = None
        while emu.regs[16] == 0 and emu.instructions_executed < 1_000_000:
            emu.run(emu.instructions_executed + 50)
            if emu.regs[16] == 0:
                snapshot = read_array(emu, program, "queue",
                                      graph.num_nodes)
        assert snapshot is not None
        reachable, dist = bfs_reachable(graph, source=0)
        first_traversal = snapshot[:reachable]
        assert set(first_traversal) == {n for n, d in enumerate(dist)
                                        if d >= 0}

    def test_bfs_branches_are_data_dependent(self, graph):
        program = build_bfs(graph)
        trace = Emulator(program).run(60_000)
        visited_tests = [t for u, t in zip(trace.uops, trace.taken)
                         if u.label == "visited_test"]
        assert visited_tests
        taken_rate = sum(visited_tests) / len(visited_tests)
        assert 0.05 < taken_rate < 0.98


class TestTcKernel:
    def test_triangle_count_matches_networkx(self):
        graph = uniform_graph(48, 6, seed=11)
        expected = sum(nx.triangles(to_networkx(graph)).values()) // 3
        program = build_tc(graph)
        emu = Emulator(program)
        r_count, r_u = 16, 6
        # run until the node register wraps back to 0 after having advanced
        # (= the first full pass completed); the counter then holds exactly
        # pass 1's total
        seen_progress = False
        while emu.instructions_executed < 10_000_000:
            emu.run(emu.instructions_executed + 50)
            if emu.regs[r_u] > 0:
                seen_progress = True
            elif seen_progress:
                break
        # each triangle is counted once per participating (u,v) edge with
        # v > u, i.e. exactly three times per full pass
        assert emu.regs[r_count] == 3 * expected


class TestSsspKernel:
    def test_distances_upper_bound_dijkstra(self):
        """Bellman-Ford distances are always valid upper bounds, and the
        source itself is exact."""
        graph = uniform_graph(48, 6, seed=13)
        program = build_sssp(graph, num_rounds=4)
        emu = Emulator(program)
        snapshot = None
        while emu.regs[18] == 0 and emu.instructions_executed < 3_000_000:
            emu.run(emu.instructions_executed + 200)
            if emu.regs[18] == 0:
                snapshot = read_array(emu, program, "dist",
                                      graph.num_nodes)
        assert snapshot is not None
        nxg = to_networkx(graph)
        expected = nx.single_source_dijkstra_path_length(
            nxg, 0, weight="weight")
        assert snapshot[0] == 0
        for node, exact in expected.items():
            assert snapshot[node] >= exact

    def test_first_pass_from_source0_exact(self):
        graph = uniform_graph(32, 5, seed=29)
        program = build_sssp(graph, num_rounds=31)
        emu = Emulator(program)
        dist_base = program.arrays["dist"]
        nxg = to_networkx(graph)
        expected = nx.single_source_dijkstra_path_length(
            nxg, 0, weight="weight")
        # capture dist[] right before the source register advances (end of
        # the first Bellman-Ford pass from source 0)
        last_good = None
        for _ in range(30_000):
            emu.run(emu.instructions_executed + 100)
            if emu.regs[18] != 0:
                break
            last_good = [emu.read_word(dist_base + 8 * i)
                         for i in range(graph.num_nodes)]
        assert last_good is not None
        # Bellman-Ford with 6 full sweeps converges on this graph diameter
        for node, exp in expected.items():
            assert last_good[node] == exp


class TestCcKernel:
    def test_labels_form_components(self):
        graph = uniform_graph(48, 6, seed=17)
        program = build_cc(graph)
        emu = Emulator(program)
        emu.run(800_000)
        labels = read_array(emu, program, "labels", graph.num_nodes)
        nxg = to_networkx(graph)
        for comp in nx.connected_components(nxg):
            comp_labels = {labels[n] for n in comp}
            assert len(comp_labels) == 1


class TestPrAndBcSmoke:
    def test_pagerank_runs_and_writes_ranks(self):
        graph = uniform_graph(32, 4, seed=19)
        program = build_pagerank(graph)
        emu = Emulator(program)
        emu.run(300_000)
        ranks = read_array(emu, program, "rank", graph.num_nodes)
        assert all(r > 0 for r in ranks)

    def test_bc_uses_calls_and_counts_paths(self):
        graph = uniform_graph(32, 4, seed=23)
        program = build_bc(graph)
        emu = Emulator(program)
        trace = emu.run(200_000)
        assert any(u.op is Op.CALL for u in trace.uops)
        assert any(u.op is Op.RET for u in trace.uops)
        sigmas = read_array(emu, program, "sigma", graph.num_nodes)
        assert any(s > 0 for s in sigmas)

    def test_bc_sigma_counts_shortest_paths_first_pass(self):
        graph = uniform_graph(24, 4, seed=31)
        program = build_bc(graph)
        emu = Emulator(program)
        # stop right after the first forward BFS: watch for the accumulate
        # call; sigma[] then holds shortest-path counts from source 0
        sigma_base = program.arrays["sigma"]
        nxg = to_networkx(graph)
        # reference sigma (number of shortest paths) via BFS layering
        import collections
        dist = {0: 0}
        sigma = collections.defaultdict(int)
        sigma[0] = 1
        queue = collections.deque([0])
        while queue:
            u = queue.popleft()
            for v in nxg.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
                if dist[v] == dist[u] + 1:
                    sigma[v] += sigma[u]
        # snapshot sigma[] while still in the first outer pass (src == 0);
        # the last snapshot before src changes is pass 1's final state
        got = None
        while emu.regs[20] == 0 and emu.instructions_executed < 500_000:
            emu.run(emu.instructions_executed + 50)
            if emu.regs[20] == 0:
                got = [emu.read_word(sigma_base + 8 * i)
                       for i in range(graph.num_nodes)]
        assert got is not None
        reached = [n for n in dist if n != 0]
        assert all(got[n] == sigma[n] for n in reached)
