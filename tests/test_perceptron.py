"""Hashed Perceptron predictor tests."""

from repro.branch.history import SpeculativeHistory
from repro.branch.perceptron import HashedPerceptron, PerceptronConfig
from repro.branch.tage import CONF_LOW
from repro.common.rng import DeterministicRng


def train(predictor, stream):
    hist = SpeculativeHistory(128)
    correct = total = 0
    warmup = len(stream) // 3
    for index, (pc, taken) in enumerate(stream):
        pred = predictor.predict(pc, hist.ghr, hist.path)
        if index >= warmup:
            total += 1
            correct += pred.taken == taken
        predictor.update(pc, hist.ghr, taken, hist.path)
        hist.push(taken, pc)
    return correct / total


class TestLearning:
    def test_biased_branch(self):
        predictor = HashedPerceptron()
        assert train(predictor, [(0x100, True)] * 1000) > 0.98

    def test_alternating_pattern(self):
        predictor = HashedPerceptron()
        stream = [(0x200, bool(i & 1)) for i in range(2000)]
        assert train(predictor, stream) > 0.95

    def test_history_correlation(self):
        rng = DeterministicRng(3)
        stream = []
        for _ in range(1200):
            outcome = rng.chance(0.5)
            stream.append((0x300, outcome))
            stream.append((0x304, outcome))   # perfectly correlated
        predictor = HashedPerceptron()
        assert train(predictor, stream) > 0.7   # >= 50% random + corr. half

    def test_random_is_hard(self):
        rng = DeterministicRng(7)
        stream = [(0x400, rng.chance(0.5)) for _ in range(1500)]
        predictor = HashedPerceptron()
        assert train(predictor, stream) < 0.7

    def test_low_confidence_on_noise(self):
        rng = DeterministicRng(11)
        predictor = HashedPerceptron()
        hist = SpeculativeHistory(128)
        low = 0
        for _ in range(600):
            taken = rng.chance(0.5)
            pred = predictor.predict(0x500, hist.ghr, hist.path)
            low += pred.confidence == CONF_LOW
            predictor.update(0x500, hist.ghr, taken, hist.path)
            hist.push(taken, 0x500)
        assert low > 60


class TestMechanics:
    def test_weights_saturate(self):
        cfg = PerceptronConfig(weight_bits=6)
        predictor = HashedPerceptron(cfg)
        hist = SpeculativeHistory(128)
        for _ in range(5000):
            predictor.update(0x100, hist.ghr, True, hist.path)
        limit = (1 << (cfg.weight_bits - 1)) - 1
        assert all(w <= limit for table in predictor._tables for w in table)

    def test_adaptive_theta_moves(self):
        cfg = PerceptronConfig(adaptive_theta=True, theta=20)
        predictor = HashedPerceptron(cfg)
        rng = DeterministicRng(13)
        hist = SpeculativeHistory(128)
        for _ in range(4000):
            taken = rng.chance(0.5)
            predictor.update(0x600, hist.ghr, taken, hist.path)
            hist.push(taken, 0x600)
        assert predictor._theta != 20

    def test_storage_bits(self):
        cfg = PerceptronConfig(num_tables=4, table_log_size=8,
                               weight_bits=6)
        assert HashedPerceptron(cfg).storage_bits() == 4 * 256 * 6

    def test_segments_cover_history(self):
        cfg = PerceptronConfig(num_tables=8, max_history=128)
        predictor = HashedPerceptron(cfg)
        assert len(predictor._segments) == 8
        assert predictor._segments[0][0] == 0
        assert all(end > start for start, end in predictor._segments)
        assert max(end for _s, end in predictor._segments) <= 128
