"""Tests for the ``repro serve`` service layer: request parsing, DAG
expansion, the content-addressed single-flight store, DAG scheduling
with failure poisoning, and the HTTP daemon end to end.

The acceptance properties from the service design are asserted here:

* two concurrent overlapping submissions execute each shared job exactly
  once (single-flight dedup, checked via manifest and telemetry);
* service results are byte-identical to a direct ``Runner.run()`` of the
  same jobs (same cache-entry bytes);
* a mid-DAG failure poisons only its transitive dependents while
  independent branches complete.
"""

import threading

import pytest

from repro.analysis import harness
from repro.analysis.runner import Runner, make_job
from repro.common.config import small_core_config
from repro.obs.metrics import validate_metric_record
from repro.service import (
    RequestError,
    ResultStore,
    ServiceClient,
    ServiceError,
    ServiceScheduler,
    build_service,
    config_from_spec,
    expand_request,
    parse_request,
)

WARMUP, MEASURE = 400, 400


def cache_to(monkeypatch, path):
    path.mkdir(parents=True, exist_ok=True)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(path))
    return path


def compare_doc(workloads, warmup=WARMUP, measure=MEASURE):
    return {"kind": "compare", "workloads": list(workloads),
            "warmup": warmup, "measure": measure}


def sweep_doc(workloads, warmup=WARMUP, measure=MEASURE):
    return {"kind": "sweep", "workloads": list(workloads),
            "configs": [{"name": "base", "config": {}}],
            "warmup": warmup, "measure": measure}


def make_scheduler(slots=2, **kwargs):
    return ServiceScheduler(slots=slots, **kwargs)


# --------------------------------------------------------------------------
# Requests
# --------------------------------------------------------------------------

class TestRequests:
    def test_config_from_spec_defaults(self):
        assert config_from_spec({}) == small_core_config()
        assert config_from_spec(None) == small_core_config()
        assert config_from_spec({"apf": {}}) == small_core_config().with_apf(
            pipeline_depth=13, num_buffers=4, buffer_capacity_uops=104,
            tage_banks=4, use_tage_confidence=True)

    def test_config_from_spec_depth_scales_buffer_capacity(self):
        cfg = config_from_spec({"apf": {"depth": 5}})
        assert cfg.apf.pipeline_depth == 5
        assert cfg.apf.buffer_capacity_uops == 40

    def test_config_from_spec_dpip(self):
        cfg = config_from_spec({"apf": {"mode": "dpip"}})
        assert cfg.apf.num_buffers == 0

    @pytest.mark.parametrize("spec", [
        {"scale": "huge"},
        {"predictor": "oracle"},
        {"unknown_field": 1},
        {"apf": {"depth": 13, "bogus": True}},
        {"apf": {"scheme": "psychic"}},
        {"apf": {"tage_banks": 3}},
    ])
    def test_config_from_spec_rejects_bad_specs(self, spec):
        with pytest.raises(RequestError):
            config_from_spec(spec)

    def test_parse_compare_fills_defaults(self):
        request = parse_request(compare_doc(["xz"]))
        assert request.kind == "compare"
        assert request.workloads == ("xz",)
        assert request.seed == 1234
        assert request.doc["base"] == {}
        assert request.doc["test"] == {"apf": {}}

    def test_signature_stable_under_omitted_defaults(self):
        implicit = parse_request(compare_doc(["xz"]))
        explicit = parse_request({**compare_doc(["xz"]), "seed": 1234,
                                  "base": {}, "test": {"apf": {}},
                                  "sampling": None})
        assert implicit.signature == explicit.signature

    @pytest.mark.parametrize("doc", [
        {"kind": "destroy"},
        {"kind": "run"},                                  # no workload
        {"kind": "compare", "workloads": []},
        {"kind": "compare", "workloads": ["xz"], "test": {}},  # base == test
        {"kind": "compare", "workloads": ["xz"], "warmup": "soon"},
        {"kind": "compare", "workloads": ["xz"], "surprise": 1},
        {"kind": "compare", "workloads": ["xz"], "sampling": "bogus!!"},
        {"kind": "sweep", "workloads": ["xz"], "configs": []},
        {"kind": "sweep", "workloads": ["xz"],
         "configs": [{"name": "a", "config": {}},
                     {"name": "a", "config": {"apf": {}}}]},
        "not an object",
    ])
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises(RequestError):
            parse_request(doc)


# --------------------------------------------------------------------------
# DAG expansion and poisoning
# --------------------------------------------------------------------------

class TestExpand:
    def test_run_request_is_one_leaf(self):
        graph = expand_request(parse_request(
            {"kind": "run", "workload": "xz",
             "warmup": WARMUP, "measure": MEASURE}))
        [node] = graph.nodes.values()
        assert node.kind == "simulate"
        expected = make_job("xz", small_core_config(), WARMUP, MEASURE)
        assert node.key == expected.key

    def test_compare_structure_and_content_addresses(self):
        graph = expand_request(parse_request(compare_doc(["xz", "leela"])))
        leaves = graph.leaves()
        synths = [n for n in graph.nodes.values() if n.kind == "synthesize"]
        assert len(graph.nodes) == 7          # 4 leaves + 2 deltas + geomean
        assert len(leaves) == 4
        # leaf keys are exactly the runner/cache content addresses
        base_cfg = config_from_spec({})
        assert make_job("xz", base_cfg, WARMUP, MEASURE).key \
            in {n.key for n in leaves}
        [summary] = [n for n in synths if n.synth == "compare_summary"]
        assert [n.key for n in graph.roots()] == [summary.key]
        deltas = [n for n in synths if n.synth == "compare_delta"]
        assert summary.deps == [d.key for d in deltas]

    def test_sweep_structure(self):
        doc = {"kind": "sweep", "workloads": ["xz", "leela"],
               "configs": [{"name": "base", "config": {}},
                           {"name": "d13", "config": {"apf": {}}}],
               "warmup": WARMUP, "measure": MEASURE}
        graph = expand_request(parse_request(doc))
        assert len(graph.leaves()) == 4
        synths = {n.synth for n in graph.nodes.values()
                  if n.kind == "synthesize"}
        assert synths == {"config_summary", "sweep_summary"}
        assert len(graph.nodes) == 7

    def test_poison_spares_independent_branches(self):
        graph = expand_request(parse_request(compare_doc(["xz", "leela"])))
        xz_base = next(n for n in graph.leaves() if n.label == "xz/base")
        xz_base.state = "failed"
        poisoned = graph.poison(xz_base.key)
        labels = sorted(n.label for n in poisoned)
        assert labels == ["geomean", "xz/delta"]
        untouched = [n for n in graph.nodes.values()
                     if n.label.startswith("leela")]
        assert all(n.state == "pending" for n in untouched)
        assert all(n.state == "poisoned" for n in poisoned)


# --------------------------------------------------------------------------
# Result store
# --------------------------------------------------------------------------

class TestResultStore:
    def test_single_flight_claims(self):
        store = ResultStore(use_disk=False)
        assert store.claim("k", "leader") == ("leader", None)
        assert store.claim("k", "w1") == ("wait", None)
        assert store.claim("k", "w2") == ("wait", None)
        waiters = store.complete("k", {"x": 1}, leaf=False)
        assert waiters == ["leader", "w1", "w2"]
        assert store.get("k") == {"x": 1}
        assert store.claim("k", "late") == ("hit", {"x": 1})
        assert store.stats()["dedups"] == 2
        assert store.stats()["inflight"] == 0

    def test_fail_releases_key_for_reexecution(self):
        store = ResultStore(use_disk=False)
        store.claim("k", "leader")
        store.claim("k", "w1")
        assert store.fail("k") == ["leader", "w1"]
        assert store.get("k") is None
        assert store.claim("k", "again") == ("leader", None)

    def test_leaf_completion_writes_harness_cache(self, tmp_path,
                                                  monkeypatch):
        cache_to(monkeypatch, tmp_path)
        store = ResultStore(use_disk=True)
        payload = {"workload": "xz", "ipc": 1.0}
        store.claim("some-key", "leader")
        store.complete("some-key", payload, leaf=True)
        on_disk, corrupt = harness.probe_payload("some-key")
        assert (on_disk, corrupt) == (payload, False)
        # a fresh store (daemon restart) finds it as a disk hit
        assert ResultStore(use_disk=True).claim("some-key", "x") \
            == ("hit", payload)


# --------------------------------------------------------------------------
# Scheduler (inline drain)
# --------------------------------------------------------------------------

class TestScheduler:
    def test_results_byte_identical_to_direct_runner(self, tmp_path,
                                                     monkeypatch):
        base_cfg = config_from_spec({})
        test_cfg = config_from_spec({"apf": {}})
        jobs = [make_job(name, cfg, WARMUP, MEASURE)
                for name in ("xz", "leela")
                for cfg in (base_cfg, test_cfg)]

        direct_dir = cache_to(monkeypatch, tmp_path / "direct")
        Runner(jobs=2, progress=False).run(jobs)

        service_dir = cache_to(monkeypatch, tmp_path / "service")
        scheduler = make_scheduler()
        try:
            response = scheduler.submit_request(compare_doc(["xz", "leela"]))
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        detail = scheduler.request_status(response["request_id"])
        assert detail["status"] == "done"

        direct_files = sorted(p.name for p in direct_dir.glob("*.json"))
        service_files = sorted(p.name for p in service_dir.glob("*.json"))
        assert direct_files == service_files == sorted(
            f"{job.key}.json" for job in jobs)
        for name in direct_files:
            assert (direct_dir / name).read_bytes() \
                == (service_dir / name).read_bytes()

        geomean = detail["results"]["geomean"]["payload"]
        assert geomean["synth"] == "compare_summary"
        assert set(geomean["speedups"]) == {"xz", "leela"}

    def test_overlapping_requests_share_executions(self, tmp_path,
                                                   monkeypatch):
        cache_to(monkeypatch, tmp_path)
        scheduler = make_scheduler()
        try:
            first = scheduler.submit_request(sweep_doc(["xz", "leela"]))
            second = scheduler.submit_request(sweep_doc(["leela", "tc"]))
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        for response in (first, second):
            detail = scheduler.request_status(response["request_id"])
            assert detail["status"] == "done"

        # the shared leela/base job was simulated exactly once: one
        # manifest entry per unique key, and one "started" telemetry
        # record per key
        keys = [e["key"] for e in scheduler.manifest.jobs]
        assert len(keys) == len(set(keys)) == 3
        started = [r["key"] for r in scheduler.telemetry.records(
            kind="service_job") if r["event"] == "started"]
        assert sorted(started) == sorted(set(keys))
        assert scheduler.telemetry.counts()["service_job.dedup"] == 1
        assert scheduler.store.stats()["dedups"] == 1

    def test_failure_poisons_only_dependents(self, tmp_path, monkeypatch):
        cache_to(monkeypatch, tmp_path)
        scheduler = make_scheduler(retries=0)
        try:
            response = scheduler.submit_request(
                compare_doc(["xz", "no-such-workload"]))
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        detail = scheduler.request_status(response["request_id"])
        assert detail["status"] == "failed"
        states = {n["label"]: n["state"] for n in detail["nodes_detail"]}
        assert states["xz/base"] == "done"
        assert states["xz/test"] == "done"
        assert states["xz/delta"] == "done"      # independent branch lives
        assert states["no-such-workload/base"] == "failed"
        assert states["no-such-workload/test"] == "failed"
        assert states["no-such-workload/delta"] == "poisoned"
        assert states["geomean"] == "poisoned"
        errors = {n["label"]: n.get("error", "")
                  for n in detail["nodes_detail"]}
        assert "dependency failed" in errors["geomean"]

    def test_resubmission_served_from_cache(self, tmp_path, monkeypatch):
        cache_to(monkeypatch, tmp_path)
        scheduler = make_scheduler()
        try:
            scheduler.submit_request(compare_doc(["xz"]))
            scheduler.drain()
            again = scheduler.submit_request(compare_doc(["xz"]))
        finally:
            scheduler.executor.shutdown()
        # every leaf hit the store: the request completed at submit time
        assert again["status"] == "done"
        counts = scheduler.telemetry.counts()
        assert counts["service_job.cache_hit"] == 2
        assert counts["service_job.started"] == 2   # from the first pass


# --------------------------------------------------------------------------
# HTTP daemon end to end
# --------------------------------------------------------------------------

@pytest.fixture
def service(tmp_path, monkeypatch):
    cache_to(monkeypatch, tmp_path / "cache")
    svc = build_service(jobs=2, port=0)
    url = svc.start()
    client = ServiceClient(url, timeout=10)
    client.wait_healthy()
    yield svc, client
    svc.stop()


class TestDaemon:
    def test_concurrent_overlapping_sweeps_end_to_end(
            self, service, tmp_path, monkeypatch):
        svc, client = service
        docs = [sweep_doc(["xz", "leela"]), sweep_doc(["leela", "tc"])]
        responses = [None, None]

        def submit(i):
            responses[i] = client.submit(docs[i])

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        details = [client.wait(r["request_id"], timeout=120)
                   for r in responses]
        assert all(d["status"] == "done" for d in details)

        # each shared job simulated exactly once across both requests
        metrics = client.metrics(kind="service_job")
        started = [r["key"] for r in metrics["records"]
                   if r["event"] == "started"]
        assert len(started) == len(set(started)) == 3

        # every buffered record round-trips the JSONL metric schema
        for record in client.metrics()["records"]:
            validate_metric_record(record)

        # payloads byte-identical to a direct Runner.run of the same jobs
        direct_dir = cache_to(monkeypatch, tmp_path / "direct")
        cfg = config_from_spec({})
        jobs = [make_job(name, cfg, WARMUP, MEASURE)
                for name in ("xz", "leela", "tc")]
        Runner(jobs=2, progress=False).run(jobs)
        service_dir = tmp_path / "cache"
        for job in jobs:
            assert (direct_dir / f"{job.key}.json").read_bytes() \
                == (service_dir / f"{job.key}.json").read_bytes()
            served = client.result(job.key)["payload"]
            assert harness.payload_bytes(served) \
                == harness.payload_bytes(
                    harness.probe_payload(job.key)[0])

    def test_resubmit_is_all_cache_hits(self, service):
        svc, client = service
        first = client.submit(compare_doc(["xz"]))
        assert client.wait(first["request_id"],
                           timeout=120)["status"] == "done"
        before = client.metrics()["counts"]
        second = client.submit(compare_doc(["xz"]))
        detail = client.wait(second["request_id"], timeout=30)
        assert detail["status"] == "done"
        after = client.metrics()["counts"]
        assert after["service_job.cache_hit"] \
            == before.get("service_job.cache_hit", 0) + 2
        assert after["service_job.started"] == before["service_job.started"]

    def test_http_error_paths(self, service):
        svc, client = service
        with pytest.raises(ServiceError) as err:
            client.submit({"kind": "destroy"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.status("r9999-nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.result("bad!key")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.result("v99-absent-key")
        assert err.value.status == 404
        health = client.healthz()
        assert health["status"] == "ok"
