"""Tests for the ``repro serve`` service layer: request parsing, DAG
expansion, the content-addressed single-flight store, DAG scheduling
with failure poisoning, the HTTP daemon end to end, and crash-safe
restart recovery via the persistent request journal.

The acceptance properties from the service design are asserted here:

* two concurrent overlapping submissions execute each shared job exactly
  once (single-flight dedup, checked via manifest and telemetry);
* service results are byte-identical to a direct ``Runner.run()`` of the
  same jobs (same cache-entry bytes);
* a mid-DAG failure poisons only its transitive dependents while
  independent branches complete;
* SIGKILLing the daemon mid-sweep and restarting with ``--resume``
  finishes the original request with zero re-executions of completed
  leaves and byte-identical payloads, while ``--fresh`` archives the
  stale journal unreplayed.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import harness
from repro.analysis.runner import Runner, make_job
from repro.common.config import small_core_config
from repro.obs.metrics import validate_metric_record
from repro.service import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    RequestError,
    RequestJournal,
    ResultStore,
    ServiceClient,
    ServiceError,
    ServiceScheduler,
    ServiceTelemetry,
    archive_journal,
    build_service,
    config_from_spec,
    default_journal_path,
    expand_request,
    parse_request,
    replay_journal,
)

WARMUP, MEASURE = 400, 400


def cache_to(monkeypatch, path):
    path.mkdir(parents=True, exist_ok=True)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(path))
    return path


def compare_doc(workloads, warmup=WARMUP, measure=MEASURE):
    return {"kind": "compare", "workloads": list(workloads),
            "warmup": warmup, "measure": measure}


def sweep_doc(workloads, warmup=WARMUP, measure=MEASURE):
    return {"kind": "sweep", "workloads": list(workloads),
            "configs": [{"name": "base", "config": {}}],
            "warmup": warmup, "measure": measure}


def make_scheduler(slots=2, **kwargs):
    return ServiceScheduler(slots=slots, **kwargs)


# --------------------------------------------------------------------------
# Requests
# --------------------------------------------------------------------------

class TestRequests:
    def test_config_from_spec_defaults(self):
        assert config_from_spec({}) == small_core_config()
        assert config_from_spec(None) == small_core_config()
        assert config_from_spec({"apf": {}}) == small_core_config().with_apf(
            pipeline_depth=13, num_buffers=4, buffer_capacity_uops=104,
            tage_banks=4, use_tage_confidence=True)

    def test_config_from_spec_depth_scales_buffer_capacity(self):
        cfg = config_from_spec({"apf": {"depth": 5}})
        assert cfg.apf.pipeline_depth == 5
        assert cfg.apf.buffer_capacity_uops == 40

    def test_config_from_spec_dpip(self):
        cfg = config_from_spec({"apf": {"mode": "dpip"}})
        assert cfg.apf.num_buffers == 0

    @pytest.mark.parametrize("spec", [
        {"scale": "huge"},
        {"predictor": "oracle"},
        {"unknown_field": 1},
        {"apf": {"depth": 13, "bogus": True}},
        {"apf": {"scheme": "psychic"}},
        {"apf": {"tage_banks": 3}},
    ])
    def test_config_from_spec_rejects_bad_specs(self, spec):
        with pytest.raises(RequestError):
            config_from_spec(spec)

    def test_parse_compare_fills_defaults(self):
        request = parse_request(compare_doc(["xz"]))
        assert request.kind == "compare"
        assert request.workloads == ("xz",)
        assert request.seed == 1234
        assert request.doc["base"] == {}
        assert request.doc["test"] == {"apf": {}}

    def test_signature_stable_under_omitted_defaults(self):
        implicit = parse_request(compare_doc(["xz"]))
        explicit = parse_request({**compare_doc(["xz"]), "seed": 1234,
                                  "base": {}, "test": {"apf": {}},
                                  "sampling": None})
        assert implicit.signature == explicit.signature

    @pytest.mark.parametrize("doc", [
        {"kind": "destroy"},
        {"kind": "run"},                                  # no workload
        {"kind": "compare", "workloads": []},
        {"kind": "compare", "workloads": ["xz"], "test": {}},  # base == test
        {"kind": "compare", "workloads": ["xz"], "warmup": "soon"},
        {"kind": "compare", "workloads": ["xz"], "surprise": 1},
        {"kind": "compare", "workloads": ["xz"], "sampling": "bogus!!"},
        {"kind": "sweep", "workloads": ["xz"], "configs": []},
        {"kind": "sweep", "workloads": ["xz"],
         "configs": [{"name": "a", "config": {}},
                     {"name": "a", "config": {"apf": {}}}]},
        "not an object",
    ])
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises(RequestError):
            parse_request(doc)


# --------------------------------------------------------------------------
# DAG expansion and poisoning
# --------------------------------------------------------------------------

class TestExpand:
    def test_run_request_is_one_leaf(self):
        graph = expand_request(parse_request(
            {"kind": "run", "workload": "xz",
             "warmup": WARMUP, "measure": MEASURE}))
        [node] = graph.nodes.values()
        assert node.kind == "simulate"
        expected = make_job("xz", small_core_config(), WARMUP, MEASURE)
        assert node.key == expected.key

    def test_compare_structure_and_content_addresses(self):
        graph = expand_request(parse_request(compare_doc(["xz", "leela"])))
        leaves = graph.leaves()
        synths = [n for n in graph.nodes.values() if n.kind == "synthesize"]
        assert len(graph.nodes) == 7          # 4 leaves + 2 deltas + geomean
        assert len(leaves) == 4
        # leaf keys are exactly the runner/cache content addresses
        base_cfg = config_from_spec({})
        assert make_job("xz", base_cfg, WARMUP, MEASURE).key \
            in {n.key for n in leaves}
        [summary] = [n for n in synths if n.synth == "compare_summary"]
        assert [n.key for n in graph.roots()] == [summary.key]
        deltas = [n for n in synths if n.synth == "compare_delta"]
        assert summary.deps == [d.key for d in deltas]

    def test_sweep_structure(self):
        doc = {"kind": "sweep", "workloads": ["xz", "leela"],
               "configs": [{"name": "base", "config": {}},
                           {"name": "d13", "config": {"apf": {}}}],
               "warmup": WARMUP, "measure": MEASURE}
        graph = expand_request(parse_request(doc))
        assert len(graph.leaves()) == 4
        synths = {n.synth for n in graph.nodes.values()
                  if n.kind == "synthesize"}
        assert synths == {"config_summary", "sweep_summary"}
        assert len(graph.nodes) == 7

    def test_poison_spares_independent_branches(self):
        graph = expand_request(parse_request(compare_doc(["xz", "leela"])))
        xz_base = next(n for n in graph.leaves() if n.label == "xz/base")
        xz_base.state = "failed"
        poisoned = graph.poison(xz_base.key)
        labels = sorted(n.label for n in poisoned)
        assert labels == ["geomean", "xz/delta"]
        untouched = [n for n in graph.nodes.values()
                     if n.label.startswith("leela")]
        assert all(n.state == "pending" for n in untouched)
        assert all(n.state == "poisoned" for n in poisoned)


# --------------------------------------------------------------------------
# Result store
# --------------------------------------------------------------------------

class TestResultStore:
    def test_single_flight_claims(self):
        store = ResultStore(use_disk=False)
        assert store.claim("k", "leader") == ("leader", None)
        assert store.claim("k", "w1") == ("wait", None)
        assert store.claim("k", "w2") == ("wait", None)
        waiters = store.complete("k", {"x": 1}, leaf=False)
        assert waiters == ["leader", "w1", "w2"]
        assert store.get("k") == {"x": 1}
        assert store.claim("k", "late") == ("hit", {"x": 1})
        assert store.stats()["dedups"] == 2
        assert store.stats()["inflight"] == 0

    def test_fail_releases_key_for_reexecution(self):
        store = ResultStore(use_disk=False)
        store.claim("k", "leader")
        store.claim("k", "w1")
        assert store.fail("k") == ["leader", "w1"]
        assert store.get("k") is None
        assert store.claim("k", "again") == ("leader", None)

    def test_leaf_completion_writes_harness_cache(self, tmp_path,
                                                  monkeypatch):
        cache_to(monkeypatch, tmp_path)
        store = ResultStore(use_disk=True)
        payload = {"workload": "xz", "ipc": 1.0}
        store.claim("some-key", "leader")
        store.complete("some-key", payload, leaf=True)
        on_disk, corrupt = harness.probe_payload("some-key")
        assert (on_disk, corrupt) == (payload, False)
        # a fresh store (daemon restart) finds it as a disk hit
        assert ResultStore(use_disk=True).claim("some-key", "x") \
            == ("hit", payload)


# --------------------------------------------------------------------------
# Scheduler (inline drain)
# --------------------------------------------------------------------------

class TestScheduler:
    def test_results_byte_identical_to_direct_runner(self, tmp_path,
                                                     monkeypatch):
        base_cfg = config_from_spec({})
        test_cfg = config_from_spec({"apf": {}})
        jobs = [make_job(name, cfg, WARMUP, MEASURE)
                for name in ("xz", "leela")
                for cfg in (base_cfg, test_cfg)]

        direct_dir = cache_to(monkeypatch, tmp_path / "direct")
        Runner(jobs=2, progress=False).run(jobs)

        service_dir = cache_to(monkeypatch, tmp_path / "service")
        scheduler = make_scheduler()
        try:
            response = scheduler.submit_request(compare_doc(["xz", "leela"]))
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        detail = scheduler.request_status(response["request_id"])
        assert detail["status"] == "done"

        direct_files = sorted(p.name for p in direct_dir.glob("*.json"))
        service_files = sorted(p.name for p in service_dir.glob("*.json"))
        assert direct_files == service_files == sorted(
            f"{job.key}.json" for job in jobs)
        for name in direct_files:
            assert (direct_dir / name).read_bytes() \
                == (service_dir / name).read_bytes()

        geomean = detail["results"]["geomean"]["payload"]
        assert geomean["synth"] == "compare_summary"
        assert set(geomean["speedups"]) == {"xz", "leela"}

    def test_overlapping_requests_share_executions(self, tmp_path,
                                                   monkeypatch):
        cache_to(monkeypatch, tmp_path)
        scheduler = make_scheduler()
        try:
            first = scheduler.submit_request(sweep_doc(["xz", "leela"]))
            second = scheduler.submit_request(sweep_doc(["leela", "tc"]))
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        for response in (first, second):
            detail = scheduler.request_status(response["request_id"])
            assert detail["status"] == "done"

        # the shared leela/base job was simulated exactly once: one
        # manifest entry per unique key, and one "started" telemetry
        # record per key
        keys = [e["key"] for e in scheduler.manifest.jobs]
        assert len(keys) == len(set(keys)) == 3
        started = [r["key"] for r in scheduler.telemetry.records(
            kind="service_job") if r["event"] == "started"]
        assert sorted(started) == sorted(set(keys))
        assert scheduler.telemetry.counts()["service_job.dedup"] == 1
        assert scheduler.store.stats()["dedups"] == 1

    def test_failure_poisons_only_dependents(self, tmp_path, monkeypatch):
        cache_to(monkeypatch, tmp_path)
        scheduler = make_scheduler(retries=0)
        try:
            response = scheduler.submit_request(
                compare_doc(["xz", "no-such-workload"]))
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        detail = scheduler.request_status(response["request_id"])
        assert detail["status"] == "failed"
        states = {n["label"]: n["state"] for n in detail["nodes_detail"]}
        assert states["xz/base"] == "done"
        assert states["xz/test"] == "done"
        assert states["xz/delta"] == "done"      # independent branch lives
        assert states["no-such-workload/base"] == "failed"
        assert states["no-such-workload/test"] == "failed"
        assert states["no-such-workload/delta"] == "poisoned"
        assert states["geomean"] == "poisoned"
        errors = {n["label"]: n.get("error", "")
                  for n in detail["nodes_detail"]}
        assert "dependency failed" in errors["geomean"]

    def test_resubmission_served_from_cache(self, tmp_path, monkeypatch):
        cache_to(monkeypatch, tmp_path)
        scheduler = make_scheduler()
        try:
            scheduler.submit_request(compare_doc(["xz"]))
            scheduler.drain()
            again = scheduler.submit_request(compare_doc(["xz"]))
        finally:
            scheduler.executor.shutdown()
        # every leaf hit the store: the request completed at submit time
        assert again["status"] == "done"
        counts = scheduler.telemetry.counts()
        assert counts["service_job.cache_hit"] == 2
        assert counts["service_job.started"] == 2   # from the first pass


# --------------------------------------------------------------------------
# HTTP daemon end to end
# --------------------------------------------------------------------------

@pytest.fixture
def service(tmp_path, monkeypatch):
    cache_to(monkeypatch, tmp_path / "cache")
    svc = build_service(jobs=2, port=0)
    url = svc.start()
    client = ServiceClient(url, timeout=10)
    client.wait_healthy()
    yield svc, client
    svc.stop()


class TestDaemon:
    def test_concurrent_overlapping_sweeps_end_to_end(
            self, service, tmp_path, monkeypatch):
        svc, client = service
        docs = [sweep_doc(["xz", "leela"]), sweep_doc(["leela", "tc"])]
        responses = [None, None]

        def submit(i):
            responses[i] = client.submit(docs[i])

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        details = [client.wait(r["request_id"], timeout=120)
                   for r in responses]
        assert all(d["status"] == "done" for d in details)

        # each shared job simulated exactly once across both requests
        metrics = client.metrics(kind="service_job")
        started = [r["key"] for r in metrics["records"]
                   if r["event"] == "started"]
        assert len(started) == len(set(started)) == 3

        # every buffered record round-trips the JSONL metric schema
        for record in client.metrics()["records"]:
            validate_metric_record(record)

        # payloads byte-identical to a direct Runner.run of the same jobs
        direct_dir = cache_to(monkeypatch, tmp_path / "direct")
        cfg = config_from_spec({})
        jobs = [make_job(name, cfg, WARMUP, MEASURE)
                for name in ("xz", "leela", "tc")]
        Runner(jobs=2, progress=False).run(jobs)
        service_dir = tmp_path / "cache"
        for job in jobs:
            assert (direct_dir / f"{job.key}.json").read_bytes() \
                == (service_dir / f"{job.key}.json").read_bytes()
            served = client.result(job.key)["payload"]
            assert harness.payload_bytes(served) \
                == harness.payload_bytes(
                    harness.probe_payload(job.key)[0])

    def test_resubmit_is_all_cache_hits(self, service):
        svc, client = service
        first = client.submit(compare_doc(["xz"]))
        assert client.wait(first["request_id"],
                           timeout=120)["status"] == "done"
        before = client.metrics()["counts"]
        second = client.submit(compare_doc(["xz"]))
        detail = client.wait(second["request_id"], timeout=30)
        assert detail["status"] == "done"
        after = client.metrics()["counts"]
        assert after["service_job.cache_hit"] \
            == before.get("service_job.cache_hit", 0) + 2
        assert after["service_job.started"] == before["service_job.started"]

    def test_http_error_paths(self, service):
        svc, client = service
        with pytest.raises(ServiceError) as err:
            client.submit({"kind": "destroy"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.status("r9999-nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.result("bad!key")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.result("v99-absent-key")
        assert err.value.status == 404
        health = client.healthz()
        assert health["status"] == "ok"


# --------------------------------------------------------------------------
# Request journal: append/replay units
# --------------------------------------------------------------------------

class TestJournal:
    def test_missing_journal_replays_empty(self, tmp_path):
        replay = replay_journal(tmp_path / "absent.jsonl")
        assert replay.requests == {}
        assert replay.unfinished() == []
        assert replay.stale_claims() == set()
        assert not replay.truncated

    def test_round_trip_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RequestJournal(path)
        doc = parse_request(compare_doc(["xz"])).doc
        journal.request_admitted("r0001-abc", 1, doc)
        journal.job_claimed("k1", "r0001-abc")
        journal.job_claimed("k2", "r0001-abc")
        journal.job_completed("k1")
        journal.job_failed("k3", "boom")
        journal.request_admitted("r0002-def", 2, doc)
        journal.request_finished("r0002-def", "done")
        journal.close()

        replay = replay_journal(path)
        assert set(replay.requests) == {"r0001-abc", "r0002-def"}
        assert [r.request_id for r in replay.unfinished()] == ["r0001-abc"]
        assert replay.requests["r0001-abc"].doc == doc
        assert replay.requests["r0002-def"].status == "done"
        assert replay.max_seq == 2
        assert replay.completed == {"k1"}
        assert replay.failed == {"k3": "boom"}
        # k2 was claimed by the (now dead) writer and never finished
        assert replay.stale_claims() == {"k2"}
        assert not replay.truncated

    def test_truncated_tail_line_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RequestJournal(path)
        journal.job_claimed("k1", "r0001-abc")
        journal.job_completed("k1")
        journal.close()
        with path.open("a") as handle:       # crash mid-append: no newline
            handle.write('{"schema": %d, "event": "job_comp'
                         % JOURNAL_SCHEMA_VERSION)
        replay = replay_journal(path)
        assert replay.truncated
        assert replay.completed == {"k1"}
        assert replay.lines == 2

    def test_garbled_final_record_with_newline_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RequestJournal(path)
        journal.job_completed("k1")
        journal.close()
        with path.open("a") as handle:
            handle.write("{not json}\n")
        replay = replay_journal(path)
        assert replay.truncated
        assert replay.completed == {"k1"}

    def test_corrupt_mid_file_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RequestJournal(path)
        journal.job_completed("k1")
        journal.close()
        with path.open("a") as handle:
            handle.write("{not json}\n")
        journal = RequestJournal(path)
        journal.job_completed("k2")          # valid line AFTER the corrupt one
        journal.close()
        with pytest.raises(JournalError, match="corrupt"):
            replay_journal(path)

    def test_unknown_schema_version_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {"schema": JOURNAL_SCHEMA_VERSION + 1,
                  "event": "job_completed", "key": "k1"}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(JournalError, match="schema"):
            replay_journal(path)

    def test_unknown_event_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {"schema": JOURNAL_SCHEMA_VERSION, "event": "mystery"}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(JournalError, match="unknown event"):
            replay_journal(path)

    def test_archive_rotates_without_clobbering(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        assert archive_journal(path) is None
        path.write_text("one\n")
        first = archive_journal(path)
        assert first is not None and first.read_text() == "one\n"
        assert not path.exists()
        path.write_text("two\n")
        second = archive_journal(path)
        assert second != first
        assert first.read_text() == "one\n"
        assert second.read_text() == "two\n"

    def test_default_path_under_cache_root(self, tmp_path, monkeypatch):
        cache_to(monkeypatch, tmp_path)
        assert default_journal_path().parent == tmp_path


# --------------------------------------------------------------------------
# Restart recovery (in-process crash simulation)
# --------------------------------------------------------------------------

def crashed_scheduler_with(doc, journal_path, **kwargs):
    """Submit ``doc`` under a journal and abandon the scheduler without
    running anything — the in-process stand-in for a SIGKILLed daemon."""
    journal = RequestJournal(journal_path)
    scheduler = ServiceScheduler(slots=1, journal=journal, **kwargs)
    response = scheduler.submit_request(doc)
    scheduler.executor.shutdown()
    journal.close()
    return response


class TestRecovery:
    def test_resume_completes_interrupted_request(self, tmp_path,
                                                  monkeypatch):
        # direct runner results for later byte-identity comparison
        cfg = config_from_spec({})
        jobs = {name: make_job(name, cfg, WARMUP, MEASURE)
                for name in ("xz", "leela", "tc")}
        direct_dir = cache_to(monkeypatch, tmp_path / "direct")
        Runner(jobs=2, progress=False).run(list(jobs.values()))

        service_dir = cache_to(monkeypatch, tmp_path / "service")
        # one leaf already completed before the "crash"
        Runner(jobs=1, progress=False).run([jobs["xz"]])
        path = default_journal_path()
        response = crashed_scheduler_with(sweep_doc(["xz", "leela", "tc"]),
                                          path)
        request_id = response["request_id"]

        replay = replay_journal(path)
        assert [r.request_id for r in replay.unfinished()] == [request_id]
        assert replay.stale_claims() == {jobs["leela"].key, jobs["tc"].key}
        archive_journal(path)

        scheduler = ServiceScheduler(slots=1,
                                     journal=RequestJournal(path))
        try:
            stats = scheduler.recover(replay)
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        assert stats["requests_resumed"] == 1
        assert stats["leaves_rehydrated"] == 1       # xz from the cache
        assert stats["leaves_requeued"] == 2
        assert stats["claims_reaped"] == 2

        detail = scheduler.request_status(request_id)
        assert detail["status"] == "done"
        assert detail["recovered"] is True
        states = {n["label"]: n for n in detail["nodes_detail"]}
        assert states["xz/base"]["recovered"] is True

        # zero re-executions of the completed leaf: only the two
        # unfinished leaves were ever started by the restarted scheduler
        started = [r["key"] for r in scheduler.telemetry.records(
            kind="service_job") if r["event"] == "started"]
        assert sorted(started) == sorted([jobs["leela"].key,
                                          jobs["tc"].key])
        counts = scheduler.telemetry.counts()
        assert counts["service_job.rehydrated"] == 1
        assert counts["service_job.requeued"] == 2
        assert counts["service_request.recovered"] == 1

        # the recovery summary is a schema-valid metric record
        [recovery] = scheduler.telemetry.records(kind="service_recovery")
        validate_metric_record(recovery)
        assert recovery["leaves_rehydrated"] == 1

        # payloads byte-identical to the direct Runner.run() entries
        for job in jobs.values():
            assert (direct_dir / f"{job.key}.json").read_bytes() \
                == (service_dir / f"{job.key}.json").read_bytes()

        # the new journal recorded the whole recovered lifecycle: a
        # second replay finds the request finished, nothing in flight
        second = replay_journal(path)
        assert second.requests[request_id].status == "done"
        assert second.unfinished() == []
        assert second.stale_claims() == set()

    def test_finished_requests_are_not_resumed(self, tmp_path,
                                               monkeypatch):
        cache_to(monkeypatch, tmp_path)
        path = default_journal_path()
        scheduler = ServiceScheduler(slots=2,
                                     journal=RequestJournal(path))
        try:
            scheduler.submit_request(compare_doc(["xz"]))
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        scheduler.journal.close()

        replay = replay_journal(path)
        assert replay.unfinished() == []
        archive_journal(path)
        fresh = ServiceScheduler(slots=2, journal=RequestJournal(path))
        try:
            stats = fresh.recover(replay)
        finally:
            fresh.executor.shutdown()
        assert stats["requests_resumed"] == 0
        assert stats["requests_already_done"] == 1
        assert fresh.overview()["requests"] == []

    def test_replayed_failure_poisons_dependents(self, tmp_path,
                                                 monkeypatch):
        cache_to(monkeypatch, tmp_path)
        doc = parse_request(compare_doc(["xz"])).doc
        base_key = make_job("xz", config_from_spec({}), WARMUP,
                            MEASURE).key
        path = default_journal_path()
        journal = RequestJournal(path)
        journal.request_admitted("r0007-feed", 7, doc)
        journal.job_failed(base_key, "died before restart")
        journal.close()

        replay = replay_journal(path)
        archive_journal(path)
        scheduler = ServiceScheduler(slots=1,
                                     journal=RequestJournal(path))
        try:
            stats = scheduler.recover(replay)
            scheduler.drain()
        finally:
            scheduler.executor.shutdown()
        assert stats["failures_replayed"] == 1
        detail = scheduler.request_status("r0007-feed")
        assert detail["status"] == "failed"
        states = {n["label"]: n["state"] for n in detail["nodes_detail"]}
        assert states["xz/base"] == "failed"
        assert states["xz/delta"] == "poisoned"
        assert states["xz/test"] == "done"     # independent branch ran
        # seq restored past the journalled admission: no id collision
        response = scheduler.submit_request(sweep_doc(["xz"]))
        assert response["request_id"].startswith("r0008-")

    def test_build_service_fresh_archives_unreplayed(self, tmp_path,
                                                     monkeypatch):
        cache_to(monkeypatch, tmp_path)
        path = default_journal_path()
        crashed_scheduler_with(sweep_doc(["xz"]), path)
        assert path.exists()

        service = build_service(jobs=1, port=0, resume=False)
        try:
            assert service.recovery is None
            assert service.scheduler.overview()["requests"] == []
            [record] = service.scheduler.telemetry.records(
                kind="service_recovery")
            assert record["event"] == "fresh"
            validate_metric_record(record)
        finally:
            service.scheduler.executor.shutdown()
        archives = list(tmp_path.glob("service-journal.jsonl.*.bak"))
        assert len(archives) == 1
        assert replay_journal(archives[0]).unfinished()

    def test_build_service_resume_recovers(self, tmp_path, monkeypatch):
        cache_to(monkeypatch, tmp_path)
        response = crashed_scheduler_with(sweep_doc(["xz"]),
                                          default_journal_path())
        service = build_service(jobs=1, port=0, resume=True)
        try:
            assert service.recovery is not None
            assert service.recovery["requests_resumed"] == 1
            detail = service.scheduler.request_status(
                response["request_id"])
            assert detail is not None and detail["recovered"] is True
        finally:
            service.scheduler.executor.shutdown()

    def test_build_service_unreplayable_journal_raises(self, tmp_path,
                                                       monkeypatch):
        cache_to(monkeypatch, tmp_path)
        path = default_journal_path()
        path.write_text(json.dumps(
            {"schema": JOURNAL_SCHEMA_VERSION + 9,
             "event": "job_completed", "key": "k"}) + "\n")
        with pytest.raises(JournalError):
            build_service(jobs=1, port=0, resume=True)
        # --fresh archives it and starts clean
        service = build_service(jobs=1, port=0, resume=False)
        service.scheduler.executor.shutdown()
        assert not path.exists() or path.stat().st_size == 0


# --------------------------------------------------------------------------
# Service-layer bugfixes
# --------------------------------------------------------------------------

class TestBugfixes:
    def test_metrics_ring_eviction_is_reported(self, tmp_path,
                                               monkeypatch):
        cache_to(monkeypatch, tmp_path)
        telemetry = ServiceTelemetry(capacity=4)
        svc = build_service(jobs=1, port=0, telemetry=telemetry,
                            use_journal=False)
        url = svc.start()
        try:
            client = ServiceClient(url, timeout=10)
            client.wait_healthy()
            for i in range(10):
                telemetry.job_event(f"k{i}", "queued", "r0001-x")
            assert telemetry.oldest_seq == 7
            data = client.metrics()
            assert len(data["records"]) == 4
            assert data["oldest_seq"] == 7
            assert data["gap"] == 6          # seqs 1..6 evicted
            data = client.metrics(since=8)
            assert data["gap"] == 0
            assert [r["seq"] for r in data["records"]] == [9, 10]
            data = client.metrics(since=2)
            assert data["gap"] == 4          # 3..6 evicted
        finally:
            svc.stop()

    def test_oldest_seq_on_empty_ring(self):
        telemetry = ServiceTelemetry(capacity=4)
        assert telemetry.oldest_seq == 1     # nothing evicted yet

    def test_submit_failure_releases_claim(self, tmp_path, monkeypatch):
        cache_to(monkeypatch, tmp_path)
        scheduler = ServiceScheduler(slots=1)
        try:
            def boom(job):
                raise RuntimeError("executor exploded")
            monkeypatch.setattr(scheduler.executor, "submit", boom)
            response = scheduler.submit_request(
                {"kind": "run", "workload": "xz",
                 "warmup": WARMUP, "measure": MEASURE})
            scheduler.drain(timeout=30)
        finally:
            scheduler.executor.shutdown()
        detail = scheduler.request_status(response["request_id"])
        assert detail["status"] == "failed"
        [node] = detail["nodes_detail"]
        assert "executor submit failed" in node["error"]
        # the claim was released, not leaked: no in-flight entry and the
        # key is claimable again
        assert scheduler.store.stats()["inflight"] == 0
        assert scheduler.store.claim("some-other", "w")[0] == "leader"

    def test_commit_failure_fails_claimants_not_parks(self, tmp_path,
                                                      monkeypatch):
        cache_to(monkeypatch, tmp_path)
        scheduler = ServiceScheduler(slots=1)

        def bad_commit(key, payload):
            raise OSError("disk full")
        monkeypatch.setattr(harness, "commit_payload", bad_commit)
        try:
            response = scheduler.submit_request(
                {"kind": "run", "workload": "xz",
                 "warmup": WARMUP, "measure": MEASURE})
            scheduler.drain(timeout=120)
        finally:
            scheduler.executor.shutdown()
        detail = scheduler.request_status(response["request_id"])
        assert detail["status"] == "failed"
        [node] = detail["nodes_detail"]
        assert "result commit failed" in node["error"]
        assert scheduler.store.stats()["inflight"] == 0

    def raw_request(self, svc, payload: bytes, shutdown_wr=True,
                    timeout=10.0) -> bytes:
        with socket.create_connection((svc.host, svc.port),
                                      timeout=timeout) as sock:
            sock.sendall(payload)
            if shutdown_wr:
                sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_http_negative_content_length_rejected(self, service):
        svc, _client = service
        reply = self.raw_request(
            svc, b"POST /submit HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"negative Content-Length" in reply

    def test_http_oversized_content_length_rejected(self, service):
        svc, _client = service
        reply = self.raw_request(
            svc, b"POST /submit HTTP/1.1\r\n"
                 b"Content-Length: 99999999999\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 413")

    def test_http_short_body_is_clean_400(self, service):
        svc, _client = service
        # client claims 50 bytes, sends 5, hangs up: must get a 400,
        # not a wedged connection or a traceback-driven 500
        reply = self.raw_request(
            svc, b"POST /submit HTTP/1.1\r\nContent-Length: 50\r\n\r\n"
                 b"{...}")
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"5 of 50" in reply


# --------------------------------------------------------------------------
# SIGKILL the daemon mid-sweep, restart, recover (full-process E2E)
# --------------------------------------------------------------------------

def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestSigkillRecovery:
    WORKLOADS = ["xz", "leela", "tc", "deepsjeng"]

    def spawn_daemon(self, port, cache_dir, *extra) -> subprocess.Popen:
        src = Path(harness.__file__).resolve().parents[2]
        env = dict(os.environ,
                   PYTHONPATH=str(src) + os.pathsep
                   + os.environ.get("PYTHONPATH", ""),
                   REPRO_CACHE_DIR=str(cache_dir))
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--jobs", "1", *extra],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)

    def test_sigkill_mid_sweep_then_resume(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        port = free_port()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10)

        daemon = self.spawn_daemon(port, cache_dir)
        try:
            client.wait_healthy(timeout=30)
            response = client.submit(sweep_doc(self.WORKLOADS))
            request_id = response["request_id"]

            # wait until at least one leaf finished, then SIGKILL the
            # daemon mid-sweep (jobs=1 serialises, so work remains)
            deadline = time.monotonic() + 120
            while True:
                counts = client.metrics()["counts"]
                if counts.get("service_job.ok", 0) >= 1:
                    break
                assert time.monotonic() < deadline, counts
                time.sleep(0.05)
        finally:
            os.kill(daemon.pid, signal.SIGKILL)   # the crash under test
            daemon.wait(timeout=30)

        leaf_keys = {make_job(name, config_from_spec({}), WARMUP,
                              MEASURE).key
                     for name in self.WORKLOADS}
        done_before = {p.stem for p in cache_dir.glob("*.json")}
        assert done_before and done_before < leaf_keys

        restarted = self.spawn_daemon(port, cache_dir, "--resume")
        try:
            client.wait_healthy(timeout=30)
            health = client.healthz()
            assert health["recovery"]["requests_resumed"] == 1
            assert health["recovery"]["leaves_rehydrated"] \
                == len(done_before)
            # (>=: a kill between cache commit and journal append can
            # leave one extra stale claim, which rehydrates as a hit)
            assert health["recovery"]["claims_reaped"] \
                >= len(leaf_keys - done_before)

            # the original request id survives the restart and finishes
            detail = client.wait(request_id, timeout=240,
                                 tolerate_unreachable=True)
            assert detail["status"] == "done"
            assert detail["recovered"] is True

            # zero re-executions: the restarted daemon only ever started
            # the leaves that were unfinished at the kill
            metrics = client.metrics()
            started = {r["key"] for r in metrics["records"]
                       if r["kind"] == "service_job"
                       and r["event"] == "started"}
            assert started == leaf_keys - done_before
            assert started.isdisjoint(done_before)
            assert metrics["counts"]["service_job.rehydrated"] \
                == len(done_before)

            # every record — including service_recovery — is schema-valid
            kinds = set()
            for record in metrics["records"]:
                validate_metric_record(record)
                kinds.add(record["kind"])
            assert "service_recovery" in kinds
            # the bounded ring never evicted anything here: gap-free
            assert metrics["gap"] == 0
        finally:
            if restarted.poll() is None:
                restarted.kill()
            restarted.wait(timeout=30)

        # payloads byte-identical to a direct Runner.run() of the same
        # jobs — including the leaves that were re-hydrated, not re-run
        direct_dir = cache_to(monkeypatch, tmp_path / "direct")
        cfg = config_from_spec({})
        jobs = [make_job(name, cfg, WARMUP, MEASURE)
                for name in self.WORKLOADS]
        Runner(jobs=2, progress=False).run(jobs)
        for job in jobs:
            assert (direct_dir / f"{job.key}.json").read_bytes() \
                == (cache_dir / f"{job.key}.json").read_bytes()
