"""Hypothesis property tests over the core data structures and the
program/emulator layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.banking import icache_bank_bits, tage_bank_bits
from repro.branch.h2p import H2PTable
from repro.branch.history import SpeculativeHistory
from repro.branch.ras import ReturnAddressStack, ShadowRAS
from repro.common.config import H2PTableConfig
from repro.isa.opcodes import Op
from repro.memory.cache import Cache
from repro.common.config import CacheConfig
from repro.workloads.emulator import Emulator
from repro.workloads.program import ProgramBuilder


# --------------------------------------------------------------------------
# history
# --------------------------------------------------------------------------

@given(st.lists(st.tuples(st.booleans(),
                          st.integers(0, 2**20)), max_size=64))
def test_history_checkpoint_restore_any_sequence(events):
    """Restoring any checkpoint rewinds the register exactly."""
    hist = SpeculativeHistory(64)
    snapshots = []
    for taken, pc in events:
        snapshots.append(hist.checkpoint())
        hist.push(taken, pc)
    for snap in reversed(snapshots):
        hist.restore(snap)
        assert hist.checkpoint() == snap


@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_history_ghr_encodes_recent_outcomes(outcomes):
    hist = SpeculativeHistory(256)
    for taken in outcomes:
        hist.push(taken)
    for offset, taken in enumerate(reversed(outcomes[-256:])):
        assert ((hist.ghr >> offset) & 1) == (1 if taken else 0)


# --------------------------------------------------------------------------
# RAS
# --------------------------------------------------------------------------

@given(st.lists(st.one_of(st.integers(1, 2**30),   # push value
                          st.none()),              # pop
                max_size=60))
def test_ras_matches_reference_stack(ops):
    ras = ReturnAddressStack(entries=16)
    reference = []
    for op in ops:
        if op is None:
            expected = reference.pop() if reference else None
            assert ras.pop() == expected
        else:
            ras.push(op)
            reference.append(op)
            if len(reference) > 16:
                reference.pop(0)


@given(st.lists(st.integers(1, 100), max_size=8),
       st.lists(st.one_of(st.integers(1, 100), st.none()), max_size=12))
def test_shadow_ras_never_disturbs_main(main_pushes, shadow_ops):
    main = ReturnAddressStack(16)
    for value in main_pushes:
        main.push(value)
    before = main.checkpoint()
    shadow = ShadowRAS(main, entries=4)
    for op in shadow_ops:
        if op is None:
            shadow.pop()
        else:
            shadow.push(op)
    assert main.checkpoint() == before


# --------------------------------------------------------------------------
# bank hashes
# --------------------------------------------------------------------------

@given(st.integers(0, 2**40))
def test_icache_bank_in_range_and_stable(address):
    bank = icache_bank_bits(address)
    assert 0 <= bank < 4
    assert bank == icache_bank_bits(address)


@given(st.integers(0, 2**40))
def test_adjacent_half_lines_never_same_bank(address):
    aligned = address & ~31
    assert icache_bank_bits(aligned) != icache_bank_bits(aligned + 32)


@given(st.integers(0, 2**40), st.sampled_from([2, 4, 8]))
def test_tage_bank_distribution_nontrivial(base, banks):
    """Across 64 consecutive branch PCs the hash uses every bank."""
    seen = {tage_bank_bits(base + 4 * i, banks) for i in range(64)}
    assert seen == set(range(banks))


# --------------------------------------------------------------------------
# H2P table
# --------------------------------------------------------------------------

@given(st.lists(st.integers(0, 40), min_size=1, max_size=200))
def test_h2p_counter_never_exceeds_saturation(branch_ids):
    table = H2PTable(H2PTableConfig(counter_bits=3))
    for branch in branch_ids:
        table.record_misprediction(0x1000 + branch * 4)
    for branch in set(branch_ids):
        assert 0 <= table.counter(0x1000 + branch * 4) <= 7


@given(st.lists(st.integers(0, 15), min_size=1, max_size=100),
       st.integers(1, 5))
def test_h2p_decrement_monotone(branch_ids, periods):
    table = H2PTable(H2PTableConfig(decrement_period=100))
    for branch in branch_ids:
        table.record_misprediction(0x2000 + branch * 4)
    before = {b: table.counter(0x2000 + b * 4) for b in set(branch_ids)}
    table.tick_instructions(100 * periods)
    for branch, value in before.items():
        after = table.counter(0x2000 + branch * 4)
        assert after <= value
        assert after >= max(0, value - periods)


# --------------------------------------------------------------------------
# cache
# --------------------------------------------------------------------------

@given(st.lists(st.integers(0, 2**16), min_size=1, max_size=300))
def test_cache_hits_plus_misses_equals_accesses(addresses):
    cache = Cache(CacheConfig("t", 2048, associativity=2, hit_latency=1),
                  miss_latency=10)
    for address in addresses:
        cache.access(address)
    stats = cache.stats
    assert stats.get("hits") + stats.get("misses") == stats.get("accesses")
    assert stats.get("accesses") == len(addresses)


@given(st.lists(st.integers(0, 2**14), min_size=1, max_size=200))
def test_cache_repeat_access_always_hits(addresses):
    cache = Cache(CacheConfig("t", 64 * 1024, associativity=16,
                              hit_latency=1), miss_latency=10)
    for address in addresses:
        cache.access(address)
    # working set fits: every re-access is a hit
    for address in addresses:
        assert cache.access(address) == 1


# --------------------------------------------------------------------------
# emulator vs. builder
# --------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from([Op.ADD, Op.XOR, Op.SUB, Op.OR]),
                min_size=1, max_size=30),
       st.integers(2, 20))
def test_generated_loops_execute_exactly(ops, trips):
    """A counted loop with an arbitrary ALU body retires exactly
    trips * (body + 2) + preamble instructions before HALT."""
    b = ProgramBuilder()
    b.label("entry")
    b.movi(1, trips)
    loop = b.label("loop")
    for index, op in enumerate(ops):
        b.alu(op, 2 + (index % 4), 2 + ((index + 1) % 4),
              2 + ((index + 2) % 4))
    b.emit(Op.ADDI, dest=1, src1=1, imm=-1)
    b.branch(Op.BNEZ, loop, src1=1)
    b.halt()
    emu = Emulator(b.finalize(entry_label="entry"))
    trace = emu.run(1_000_000)
    assert emu.halted
    expected = 1 + trips * (len(ops) + 2) + 1
    assert len(trace) == expected
