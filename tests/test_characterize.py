"""Tests for workload characterisation."""

import pytest

from repro.analysis.characterize import characterize
from repro.isa.opcodes import Op
from repro.workloads.emulator import Emulator
from repro.workloads.profiles import workload_trace
from repro.workloads.program import ProgramBuilder
from repro.workloads.trace import DynamicTrace


def trace_of(build, n=5_000):
    b = ProgramBuilder()
    build(b)
    return Emulator(b.finalize(entry_label="entry")).run(n)


class TestCharacterize:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            characterize(DynamicTrace())

    def test_pure_loop(self):
        def build(b):
            b.label("entry")
            loop = b.label("loop")
            b.alu(Op.ADD, 1, 1, 1)
            b.alu(Op.ADD, 2, 2, 2)
            b.jump(loop)
        profile = characterize(trace_of(build, 3_000))
        assert profile.instructions == 3_000
        assert profile.cond_branch_density == 0.0
        assert profile.taken_density == pytest.approx(1 / 3, abs=0.01)
        assert profile.mean_basic_block == pytest.approx(3.0, abs=0.1)
        assert profile.code_footprint_bytes == 12

    def test_branch_mix_fractions(self):
        def build(b):
            b.label("entry")
            b.movi(1, 1_000_000)
            loop = b.label("loop")
            b.emit(Op.ADDI, dest=1, src1=1, imm=-1)
            b.branch(Op.BNEZ, loop, src1=1)
            b.halt()
        profile = characterize(trace_of(build, 2_000))
        assert profile.branch_mix["CONDITIONAL"] > 0.3
        assert "DIRECT_JUMP" not in profile.branch_mix

    def test_memory_densities_and_working_set(self):
        def build(b):
            base = b.alloc_array("arr", 64)
            b.label("entry")
            b.movi(1, base)
            b.movi(2, 0)
            loop = b.label("loop")
            b.emit(Op.SHL, dest=3, src1=2, src2=2)  # harmless addr math
            b.load(4, 1, offset=0)
            b.store(4, 1, offset=8)
            b.jump(loop)
        profile = characterize(trace_of(build, 2_000))
        assert profile.load_density == pytest.approx(0.25, abs=0.02)
        assert profile.store_density == pytest.approx(0.25, abs=0.02)
        assert profile.data_working_set_bytes >= 64

    def test_ilp_proxy_orders_serial_vs_parallel(self):
        def serial(b):
            b.label("entry")
            loop = b.label("loop")
            for _ in range(8):
                b.alu(Op.ADD, 1, 1, 1)       # one long chain
            b.jump(loop)

        def parallel(b):
            b.label("entry")
            loop = b.label("loop")
            for reg in range(1, 9):
                b.alu(Op.ADD, reg, reg, reg)  # eight chains
            b.jump(loop)
        serial_profile = characterize(trace_of(serial, 3_000))
        parallel_profile = characterize(trace_of(parallel, 3_000))
        assert parallel_profile.ilp_proxy > 2 * serial_profile.ilp_proxy

    def test_real_workloads_ordering(self):
        tc = characterize(workload_trace("tc", 10_000))
        x264 = characterize(workload_trace("x264", 10_000))
        # tc: tight taken-dense loops; x264: long straight-line blocks
        assert tc.taken_density > x264.taken_density
        assert tc.mean_basic_block < x264.mean_basic_block
        assert tc.cond_branch_density > x264.cond_branch_density

    def test_summary_rows_render(self):
        profile = characterize(workload_trace("xz", 5_000))
        rows = profile.summary_rows()
        assert len(rows) == 9
        assert all(len(row) == 2 for row in rows)
