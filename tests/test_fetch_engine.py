"""Main fetch engine tests: bundle formation, wrong-path transitions,
misfetch stalls, and checkpoints."""

from repro.branch.btb import BTB
from repro.branch.h2p import H2PTable
from repro.branch.indirect import IndirectPredictor
from repro.branch.tage import TageSCL
from repro.common.config import (
    BTBConfig,
    H2PTableConfig,
    small_core_config,
)
from repro.core.fetch_engine import BranchUnit, MainFetchEngine
from repro.common.statistics import StatGroup
from repro.isa.opcodes import Op
from repro.memory.cache import CacheHierarchy
from repro.workloads.emulator import Emulator
from repro.workloads.program import ProgramBuilder


def build_engine(build_fn, trace_len=2000):
    builder = ProgramBuilder()
    build_fn(builder)
    program = builder.finalize(entry_label="entry")
    trace = Emulator(program).run(trace_len)
    config = small_core_config()
    bu = BranchUnit(TageSCL(config.tage, seed=7), BTB(BTBConfig()),
                    IndirectPredictor(), H2PTable(H2PTableConfig()))
    stats = StatGroup("test")
    hierarchy = CacheHierarchy(config.memory)
    engine = MainFetchEngine(program, trace, bu, hierarchy, config, stats)
    return engine, trace, program


def straight_line(b):
    b.label("entry")
    loop = b.label("loop")
    for _ in range(20):
        b.alu(Op.ADD, 1, 1, 1)
    b.jump(loop)


def tight_loop(b):
    b.label("entry")
    b.movi(1, 1_000_000)
    loop = b.label("loop")
    b.emit(Op.ADDI, dest=1, src1=1, imm=-1)
    b.branch(Op.BNEZ, loop, src1=1)
    b.halt()


class TestBundleFormation:
    def test_width_limits_bundle(self):
        engine, _, _ = build_engine(straight_line)
        bundle = engine.step(0)
        assert bundle is not None
        assert len(bundle.uops) == engine.fe.width

    def test_taken_branch_ends_bundle(self):
        engine, _, _ = build_engine(tight_loop)
        # warm the BTB first: first taken branch misfetches
        for cycle in range(200):
            bundle = engine.step(cycle)
            if bundle is None:
                continue
            if any(u.static.is_branch for u in bundle.uops):
                break
        engine2, _, _ = build_engine(tight_loop)
        saw_branch_end = False
        for cycle in range(300):
            bundle = engine2.step(cycle)
            if bundle is None:
                continue
            for i, du in enumerate(bundle.uops):
                if du.static.is_branch and du.branch.predicted_taken:
                    assert i == len(bundle.uops) - 1
                    saw_branch_end = True
        assert saw_branch_end

    def test_seq_numbers_monotonic(self):
        engine, _, _ = build_engine(straight_line)
        seqs = []
        for cycle in range(50):
            bundle = engine.step(cycle)
            if bundle:
                seqs.extend(u.seq for u in bundle.uops)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_stall_returns_none(self):
        engine, _, _ = build_engine(straight_line)
        engine.stall_until = 10
        assert engine.step(5) is None
        assert engine.step(10) is not None

    def test_bundle_ready_after_frontend_depth(self):
        engine, _, _ = build_engine(straight_line)
        bundle = engine.step(3)
        assert bundle.ready_cycle >= 3 + engine.fe.depth


class TestBranchRecords:
    def test_records_created_with_checkpoints(self):
        engine, _, _ = build_engine(tight_loop)
        recs = []
        for cycle in range(100):
            bundle = engine.step(cycle)
            if bundle:
                recs.extend(engine.new_branches)
            if recs:
                break
        assert recs
        rec = recs[0]
        assert rec.on_trace
        assert rec.recovery_cursor > 0
        assert rec.hist_checkpoint is not None

    def test_mispredict_switches_to_wrong_path(self):
        """A cold predictor eventually mispredicts the loop exit; fetch must
        continue down the wrong (predicted) path."""
        def short_loop(b):
            b.label("entry")
            outer = b.label("outer")
            b.movi(1, 3)
            loop = b.label("loop")
            b.emit(Op.ADDI, dest=1, src1=1, imm=-1)
            b.branch(Op.BNEZ, loop, src1=1)
            b.alu(Op.ADD, 2, 2, 2)
            b.jump(outer)
        engine, trace, _ = build_engine(short_loop)
        mispredicted = False
        for cycle in range(600):
            bundle = engine.step(cycle)
            if bundle is None:
                if engine.dead:
                    break
                continue
            for rec in engine.new_branches:
                if rec.mispredict:
                    mispredicted = True
            if mispredicted:
                break
        assert mispredicted
        assert engine.wrong_path

    def test_redirect_restores_trace_mode(self):
        engine, trace, _ = build_engine(tight_loop)
        engine.redirect_wrong_path(0xDEAD0000, 5)
        assert engine.dead     # off image
        engine.redirect_on_trace(10, 6)
        assert not engine.wrong_path
        assert not engine.dead
        assert engine.cursor == 10


class TestMisfetch:
    def test_btb_miss_on_taken_branch_stalls(self):
        engine, _, _ = build_engine(tight_loop)
        stall_before = engine.stall_until
        for cycle in range(100):
            bundle = engine.step(cycle)
            if bundle and any(u.static.is_branch for u in bundle.uops):
                break
        assert engine.stats.get("btb_misfetches") >= 1
        assert engine.stall_until > stall_before

    def test_btb_trained_after_misfetch(self):
        engine, _, _ = build_engine(tight_loop)
        for cycle in range(2000):
            if engine.dead:
                break
            engine.step(cycle)
        # the loop branch misfetches once, then hits
        assert engine.stats.get("btb_misfetches") <= 2


class TestWrongPathMemory:
    def test_wrong_path_loads_get_synthetic_addresses(self):
        from repro.core.fetch_engine import synthetic_address

        def with_load(b):
            base = b.alloc_array("a", 8)
            b.label("entry")
            b.movi(1, base)
            loop = b.label("loop")
            b.load(2, 1)
            b.jump(loop)
        _, _, program = build_engine(with_load, trace_len=100)
        addr = synthetic_address(program, 0x400000, 17)
        assert program.data_base <= addr < program.data_end
        assert addr % 8 == 0
        assert addr == synthetic_address(program, 0x400000, 17)
