"""TAGE-SC-L predictor tests: learning, confidence, loop prediction."""

from repro.branch.history import SpeculativeHistory
from repro.branch.tage import CONF_HIGH, CONF_LOW, TageSCL, _geometric_lengths
from repro.common.config import TageConfig
from repro.common.rng import DeterministicRng


def make_predictor(**overrides):
    cfg = TageConfig(num_tables=5, table_log_size=8, bimodal_log_size=10,
                     max_history=64, sc_log_size=7, loop_log_size=6,
                     **overrides)
    return TageSCL(cfg, seed=99)


def train(predictor, sequence, pc=0x4000, repeats=1):
    """Feed (outcome) sequence through predict/update; return accuracy."""
    hist = SpeculativeHistory(64)
    correct = total = 0
    for _ in range(repeats):
        for taken in sequence:
            pred = predictor.predict(pc, hist.ghr, hist.path)
            correct += pred.taken == taken
            total += 1
            predictor.update(pc, hist.ghr, taken, hist.path)
            hist.push(taken, pc)
    return correct / total


class TestGeometricLengths:
    def test_monotone_strictly_increasing(self):
        cfg = TageConfig(num_tables=8, min_history=4, max_history=256)
        lengths = _geometric_lengths(cfg)
        assert len(lengths) == 8
        assert all(b > a for a, b in zip(lengths, lengths[1:]))
        assert lengths[0] == 4
        assert lengths[-1] == 256

    def test_single_table(self):
        cfg = TageConfig(num_tables=1, min_history=6)
        assert _geometric_lengths(cfg) == [6]


class TestLearning:
    def test_always_taken_branch(self):
        predictor = make_predictor()
        acc = train(predictor, [True] * 50)
        assert acc > 0.9

    def test_alternating_pattern_learned(self):
        predictor = make_predictor()
        # warm up then measure: T N T N ... is trivially history-predictable
        train(predictor, [True, False] * 40)
        acc = train(predictor, [True, False] * 40)
        assert acc > 0.95

    def test_period_four_pattern_learned(self):
        predictor = make_predictor()
        pattern = [True, True, True, False] * 30
        train(predictor, pattern, repeats=3)
        acc = train(predictor, pattern)
        assert acc > 0.9

    def test_correlated_branches_via_history(self):
        """Branch B repeats branch A's outcome: perfectly predictable from
        one bit of global history."""
        predictor = make_predictor()
        rng = DeterministicRng(5)
        hist = SpeculativeHistory(64)
        correct_b = total_b = 0
        for round_number in range(400):
            outcome = rng.chance(0.5)
            for pc, measure in ((0x100, False), (0x200, True)):
                pred = predictor.predict(pc, hist.ghr, hist.path)
                if measure and round_number > 100:
                    total_b += 1
                    correct_b += pred.taken == outcome
                predictor.update(pc, hist.ghr, outcome, hist.path)
                hist.push(outcome, pc)
        assert correct_b / total_b > 0.9

    def test_random_branch_not_learnable(self):
        predictor = make_predictor()
        rng = DeterministicRng(17)
        seq = [rng.chance(0.5) for _ in range(600)]
        acc = train(predictor, seq)
        assert acc < 0.72


class TestConfidence:
    def test_confident_after_training(self):
        predictor = make_predictor()
        train(predictor, [True] * 100)
        hist = SpeculativeHistory(64)
        # replay some history so the provider entry is hot
        for _ in range(8):
            predictor.predict(0x4000, hist.ghr, hist.path)
            predictor.update(0x4000, hist.ghr, True, hist.path)
            hist.push(True, 0x4000)
        pred = predictor.predict(0x4000, hist.ghr, hist.path)
        assert pred.taken
        assert pred.confidence >= 1

    def test_low_confidence_exists_for_noise(self):
        predictor = make_predictor()
        rng = DeterministicRng(23)
        hist = SpeculativeHistory(64)
        low_seen = 0
        for _ in range(500):
            taken = rng.chance(0.5)
            pred = predictor.predict(0x888, hist.ghr, hist.path)
            low_seen += pred.confidence == CONF_LOW
            predictor.update(0x888, hist.ghr, taken, hist.path)
            hist.push(taken, 0x888)
        assert low_seen > 50

    def test_confidence_levels_are_ordered_constants(self):
        assert CONF_LOW < CONF_HIGH


class TestLoopPredictor:
    def test_constant_trip_loop_perfect(self):
        predictor = make_predictor()
        hist = SpeculativeHistory(64)
        rng = DeterministicRng(1)
        mispredicts = 0
        measured = 0
        for rep in range(200):
            for iteration in range(17):
                taken = iteration < 16
                pred = predictor.predict(0x700, hist.ghr, hist.path)
                if rep >= 60:
                    measured += 1
                    mispredicts += pred.taken != taken
                predictor.update(0x700, hist.ghr, taken, hist.path,
                                 backward=True)
                hist.push(taken, 0x700)
                # noise branches pollute history so TAGE alone cannot learn
                for k in range(4):
                    noise_pc = 0x900 + 4 * k
                    noise = rng.chance(0.5)
                    predictor.update(noise_pc, hist.ghr, noise, hist.path)
                    hist.push(noise, noise_pc)
        assert mispredicts / measured < 0.02

    def test_loop_predictor_disabled(self):
        predictor = make_predictor(enable_loop_predictor=False)
        # same training must not crash and still mostly predict taken
        acc = train(predictor, ([True] * 16 + [False]) * 20)
        assert acc > 0.8

    def test_forward_branches_do_not_train_loop(self):
        predictor = make_predictor()
        hist = SpeculativeHistory(64)
        for _ in range(100):
            predictor.update(0x700, hist.ghr, True, hist.path,
                             backward=False)
        entry = predictor._loop_entry(0x700)
        assert entry.tag != 0x700


class TestAllocationAndStorage:
    def test_storage_bits_positive_and_scales(self):
        small = make_predictor()
        big = TageSCL(TageConfig(num_tables=5, table_log_size=10), seed=1)
        assert 0 < small.storage_bits() < big.storage_bits()

    def test_mispredicts_trigger_allocation(self):
        predictor = make_predictor()
        hist = SpeculativeHistory(64)
        # drive mispredictions with an alternating branch
        for i in range(64):
            taken = bool(i & 1)
            predictor.update(0x123, hist.ghr, taken, hist.path)
            hist.push(taken, 0x123)
        allocated = sum(tag != -1 for table in predictor._tags
                        for tag in table)
        assert allocated > 0

    def test_update_is_deterministic(self):
        a, b = make_predictor(), make_predictor()
        seq = [(0x10 * i % 0x80, bool(i % 3)) for i in range(300)]
        hist_a, hist_b = SpeculativeHistory(64), SpeculativeHistory(64)
        out_a, out_b = [], []
        for pc, taken in seq:
            out_a.append(a.predict(pc, hist_a.ghr, hist_a.path).taken)
            a.update(pc, hist_a.ghr, taken, hist_a.path)
            hist_a.push(taken, pc)
            out_b.append(b.predict(pc, hist_b.ghr, hist_b.path).taken)
            b.update(pc, hist_b.ghr, taken, hist_b.path)
            hist_b.push(taken, pc)
        assert out_a == out_b
