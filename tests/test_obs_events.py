"""Observability-layer contracts (``repro.obs``).

Three invariants anchor the layer:

1. Attaching a sink never changes simulation results — cycles, IPC, and
   the full statistics snapshot are bit-identical with and without
   observation, under both loop drivers.
2. Both loop drivers emit *identical* event streams: events fire only at
   state changes, and the skipping loop never skips a cycle in which a
   state change happens.
3. The stale cycle-cap regression: ``run()`` resets ``cycle_cap_hit`` so
   a capped interval does not taint every later run on the same core.
"""

import pytest

from repro.common.config import small_core_config
from repro.core.ooo_core import OoOCore
from repro.obs import (
    EV_ALLOC,
    EV_FETCH,
    EV_RETIRE,
    EV_SQUASH,
    EVENT_NAMES,
    EventRecorder,
    MultiSink,
    ObsSink,
    replay_timelines,
)
from repro.workloads.profiles import build_workload, workload_trace

TOTAL = 4_000
SEED = 7
CONFIGS = {
    "base": lambda: small_core_config(),
    "apf": lambda: small_core_config().with_apf(),
}


def make_core(workload, config_key):
    program = build_workload(workload)
    trace = workload_trace(workload, TOTAL)
    return OoOCore(CONFIGS[config_key](), program, trace, seed=SEED)


def fingerprint(core):
    return {
        "now": core.now,
        "retired": core.retired,
        "counters": core.stats.counters,
        "ipc": core.ipc(),
    }


def run_recorded(workload, config_key, cycle_by_cycle):
    core = make_core(workload, config_key)
    recorder = EventRecorder()
    core.attach_obs(recorder)
    core.run(TOTAL, cycle_by_cycle=cycle_by_cycle)
    return core, recorder


@pytest.mark.parametrize("workload", ["leela", "tc"])
@pytest.mark.parametrize("config_key", ["base", "apf"])
class TestObservationIsFree:
    def test_enabled_vs_disabled_bit_identical(self, workload, config_key):
        """Satellite 5: an attached recorder must not perturb timing or
        statistics on either driver."""
        for cycle_by_cycle in (False, True):
            plain = make_core(workload, config_key)
            plain.run(TOTAL, cycle_by_cycle=cycle_by_cycle)
            observed, recorder = run_recorded(workload, config_key,
                                              cycle_by_cycle)
            assert recorder.emitted > 0
            assert fingerprint(observed) == fingerprint(plain)

    def test_both_drivers_emit_identical_streams(self, workload,
                                                 config_key):
        """The tentpole contract: reference and skipping loops produce
        the same events, in the same order, on the same cycles — and the
        same occupancy histograms."""
        _, ref = run_recorded(workload, config_key, cycle_by_cycle=True)
        _, skip = run_recorded(workload, config_key, cycle_by_cycle=False)
        assert list(skip.events) == list(ref.events)
        assert skip.emitted == ref.emitted
        for key in EventRecorder.OCCUPANCY_KEYS:
            assert skip.occupancy[key].as_dict() \
                == ref.occupancy[key].as_dict()


class TestEventStreamShape:
    def test_stream_is_consistent(self):
        core, recorder = run_recorded("leela", "base",
                                      cycle_by_cycle=False)
        events = list(recorder.events)
        kinds = {event[0] for event in events}
        assert kinds <= set(EVENT_NAMES)
        retires = [e for e in events if e[0] == EV_RETIRE]
        assert len(retires) == core.retired
        # cycles are monotonically non-decreasing across the stream
        cycles = [e[1] for e in events]
        assert cycles == sorted(cycles)
        # every retired seq was fetched and allocated
        lives = replay_timelines(events)
        for event in retires:
            life = lives[event[2]]
            assert life.allocate_cycle is not None
            assert life.retire_cycle is not None
            assert life.squash_cycle is None
        # every squash leaves no younger live uop retired later
        squashes = [e for e in events if e[0] == EV_SQUASH]
        assert squashes, "leela@seed7 should mispredict"
        for life in lives.values():
            assert (life.retire_cycle is None) \
                or (life.squash_cycle is None)

    def test_ring_overflow_drops_oldest(self):
        core = make_core("leela", "base")
        recorder = EventRecorder(capacity=100)
        core.attach_obs(recorder)
        core.run(TOTAL)
        assert len(recorder.events) == 100
        assert recorder.dropped == recorder.emitted - 100
        assert recorder.dropped > 0
        # truncated streams still replay without blowing up
        replay_timelines(recorder.events)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventRecorder(capacity=0)
        with pytest.raises(ValueError):
            EventRecorder(capacity=-5)

    def test_occupancy_rows(self):
        _, recorder = run_recorded("leela", "apf", cycle_by_cycle=False)
        rows = recorder.occupancy_rows()
        names = [row[0] for row in rows]
        assert set(names) <= set(EventRecorder.OCCUPANCY_KEYS)
        assert "rob" in names and "ftq" in names
        for _name, p50, p90, mean, samples in rows:
            assert p50 <= p90
            assert samples > 0
            assert mean >= 0

    def test_multisink_fans_out(self):
        core = make_core("leela", "base")
        first, second = EventRecorder(), EventRecorder()
        core.attach_obs(MultiSink([first, second]))
        core.run(TOTAL)
        assert first.emitted > 0
        assert list(first.events) == list(second.events)

    def test_detach_restores_silence(self):
        core = make_core("leela", "base")
        recorder = EventRecorder()
        core.attach_obs(recorder)
        core.detach_obs()
        core.run(TOTAL)
        assert recorder.emitted == 0

    def test_base_sink_is_noop(self):
        """Any ObsSink subclass can ignore callbacks it doesn't need."""
        core = make_core("leela", "base")
        core.attach_obs(ObsSink())
        core.run(TOTAL)
        assert core.retired == TOTAL


class TestReplayMatchesStream:
    def test_alloc_and_fetch_pair_up(self):
        _, recorder = run_recorded("leela", "base", cycle_by_cycle=False)
        events = list(recorder.events)
        fetched = {e[2] for e in events if e[0] == EV_FETCH}
        allocated = [e for e in events if e[0] == EV_ALLOC]
        assert allocated
        for event in allocated:
            assert event[2] in fetched


class TestCycleCapReset:
    def test_cap_verdict_does_not_leak_into_next_run(self):
        """Regression (satellite 1): a capped run() left cycle_cap_hit
        True forever, so every later interval on the same core — the
        sampling simulator reuses one core across intervals — reported a
        stale cap."""
        core = make_core("leela", "base")
        core.run(TOTAL, max_cycles=40)
        assert core.cycle_cap_hit
        assert core.stats.counters["cycle_cap_hit"] == 1
        # same core, fresh run(): plenty of cycle budget, clean verdict
        core.run(TOTAL)
        assert not core.cycle_cap_hit
        assert core.retired == TOTAL
        # the lifetime counter still remembers the one capped run
        assert core.stats.counters["cycle_cap_hit"] == 1
