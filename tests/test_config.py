"""Tests for configuration dataclasses."""

import pytest

from repro.common.config import (
    APFConfig,
    AlternatePathMode,
    CacheConfig,
    CoreConfig,
    FetchScheme,
    FrontendConfig,
    TageConfig,
    describe,
    paper_core_config,
    small_core_config,
)


class TestFrontendConfig:
    def test_default_depth_is_fifteen(self):
        fe = FrontendConfig()
        assert fe.depth == 15

    def test_pre_rat_depth_is_thirteen(self):
        """The APF pipeline covers BP through the pre-RAT dependency check."""
        fe = FrontendConfig()
        assert fe.pre_rat_depth == 13

    def test_fetch_width_matches_32B(self):
        fe = FrontendConfig()
        assert fe.fetch_width_uops == 8


class TestTageConfig:
    def test_scaled_reduces_capacity(self):
        cfg = TageConfig(table_log_size=10, bimodal_log_size=13)
        mini = cfg.scaled(-2)
        assert mini.table_log_size == 8
        assert mini.bimodal_log_size == 11
        assert mini.num_tables == cfg.num_tables

    def test_scaled_floors(self):
        cfg = TageConfig(table_log_size=5)
        assert cfg.scaled(-8).table_log_size == 4


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig("c", size_bytes=64 * 1024, line_bytes=64,
                          associativity=8)
        assert cfg.num_sets == 128

    def test_invalid_geometry_raises(self):
        cfg = CacheConfig("c", size_bytes=32, line_bytes=64,
                          associativity=8)
        with pytest.raises(ValueError):
            _ = cfg.num_sets


class TestCoreConfig:
    def test_apf_disabled_by_default(self):
        assert not CoreConfig().apf.enabled

    def test_with_apf_enables_and_overrides(self):
        cfg = CoreConfig().with_apf(pipeline_depth=7, num_buffers=2)
        assert cfg.apf.enabled
        assert cfg.apf.pipeline_depth == 7
        assert cfg.apf.num_buffers == 2
        # original untouched (frozen dataclasses)
        assert not CoreConfig().apf.enabled

    def test_with_frontend_and_backend(self):
        cfg = CoreConfig().with_frontend(width=16).with_backend(
            rob_entries=1024)
        assert cfg.frontend.width == 16
        assert cfg.backend.rob_entries == 1024

    def test_apf_buffer_capacity_matches_depth(self):
        """104 uops = 8 wide x 13 stages (Section V-F)."""
        apf = APFConfig()
        fe = FrontendConfig()
        assert apf.buffer_capacity_uops == fe.width * apf.pipeline_depth

    def test_scales_share_pipeline_geometry(self):
        small, paper = small_core_config(), paper_core_config()
        assert small.frontend.depth == paper.frontend.depth
        assert small.frontend.width == paper.frontend.width

    def test_describe_mentions_apf(self):
        rows = describe(CoreConfig().with_apf())
        assert "enabled=True" in rows["APF"]

    def test_scheme_and_mode_constants(self):
        assert FetchScheme.BANKED != FetchScheme.TIME_SHARED
        assert AlternatePathMode.APF != AlternatePathMode.DPIP
