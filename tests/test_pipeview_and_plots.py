"""Tests for the pipeline tracer and the ASCII plot helpers."""

import pytest

from repro.analysis.pipeview import PipeTracer
from repro.analysis.plots import bar_chart, grouped_bar_chart, sparkline
from repro.common.config import small_core_config
from repro.core.ooo_core import OoOCore
from repro.workloads.profiles import build_workload, workload_trace


def traced_core(workload="leela", total=4_000, apf=False):
    config = small_core_config()
    if apf:
        config = config.with_apf()
    program = build_workload(workload)
    trace = workload_trace(workload, total)
    core = OoOCore(config, program, trace, seed=5)
    tracer = PipeTracer(core)
    core.run(total)
    return core, tracer


class TestPipeTracer:
    def test_records_all_lifecycle_stages(self):
        core, tracer = traced_core()
        assert tracer.timelines
        retired = [t for t in tracer.timelines.values()
                   if t.retire_cycle is not None]
        assert retired
        sample = retired[len(retired) // 2]
        assert sample.fetch_cycle <= sample.allocate_cycle
        assert sample.allocate_cycle <= sample.retire_cycle

    def test_squashes_recorded_on_recovery(self):
        core, tracer = traced_core("leela")
        assert tracer.recoveries
        squashed = [t for t in tracer.timelines.values()
                    if t.squash_cycle is not None]
        assert squashed
        # a squashed uop never retires
        assert all(t.retire_cycle is None for t in squashed)

    def test_restored_uops_marked(self):
        core, tracer = traced_core("leela", apf=True)
        assert tracer.restores
        assert tracer.restored_uop_count() > 0

    def test_render_produces_rows(self):
        core, tracer = traced_core()
        at = tracer.recoveries[0]
        text = tracer.render(at - 4, at + 12)
        lines = text.splitlines()
        assert len(lines) > 3
        assert "recoveries" in lines[0]
        # every row lane has the same width
        widths = {len(line.split("|")[1]) for line in lines[1:]
                  if "|" in line}
        assert len(widths) == 1

    def test_render_rejects_empty_window(self):
        core, tracer = traced_core()
        with pytest.raises(ValueError):
            tracer.render(10, 10)

    def test_frontend_latency_histogram(self):
        core, tracer = traced_core(apf=True)
        hist = tracer.frontend_latency_histogram()
        assert hist
        depth = core.config.frontend.depth
        # the dominant frontend latency is the pipe depth; restored uops
        # appear at small latencies
        assert any(delta >= depth for delta in hist)
        assert min(hist) < depth

    def test_tracing_does_not_change_timing(self):
        plain_config = small_core_config()
        program = build_workload("xz")
        trace = workload_trace("xz", 3_000)
        core_plain = OoOCore(plain_config, program, trace, seed=5)
        core_plain.run(3_000)
        core_traced = OoOCore(plain_config, program, trace, seed=5)
        PipeTracer(core_traced)
        core_traced.run(3_000)
        assert core_plain.now == core_traced.now


class TestPlots:
    def test_bar_chart_basic(self):
        text = bar_chart({"a": 1.05, "b": 1.10}, title="T", baseline=1.0)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        # larger value gets the longer bar
        assert lines[2].count("█") > lines[1].count("█")

    def test_bar_chart_negative_marked(self):
        text = bar_chart({"up": 1.04, "down": 0.96}, baseline=1.0)
        assert "<" in text

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_grouped_chart_covers_all_categories(self):
        text = grouped_bar_chart(
            {"apf": {"x": 1.05, "y": 1.02}, "dpip": {"x": 0.99}})
        assert "x:" in text and "y:" in text
        assert "apf" in text and "dpip" in text

    def test_sparkline(self):
        line = sparkline([1, 2, 3, 2, 1])
        assert len(line) == 5
        assert line[2] == "█"
        assert sparkline([]) == ""
        assert len(set(sparkline([5, 5, 5]))) == 1
