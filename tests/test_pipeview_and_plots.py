"""Tests for the pipeline tracer and the ASCII plot helpers."""

import pytest

from repro.analysis.pipeview import PipeTracer
from repro.analysis.plots import bar_chart, grouped_bar_chart, sparkline
from repro.common.config import small_core_config
from repro.core.ooo_core import OoOCore
from repro.workloads.profiles import build_workload, workload_trace


def traced_core(workload="leela", total=4_000, apf=False):
    config = small_core_config()
    if apf:
        config = config.with_apf()
    program = build_workload(workload)
    trace = workload_trace(workload, total)
    core = OoOCore(config, program, trace, seed=5)
    tracer = PipeTracer(core)
    core.run(total)
    return core, tracer


class TestPipeTracer:
    def test_records_all_lifecycle_stages(self):
        core, tracer = traced_core()
        assert tracer.timelines
        retired = [t for t in tracer.timelines.values()
                   if t.retire_cycle is not None]
        assert retired
        sample = retired[len(retired) // 2]
        assert sample.fetch_cycle <= sample.allocate_cycle
        assert sample.allocate_cycle <= sample.retire_cycle

    def test_squashes_recorded_on_recovery(self):
        core, tracer = traced_core("leela")
        assert tracer.recoveries
        squashed = [t for t in tracer.timelines.values()
                    if t.squash_cycle is not None]
        assert squashed
        # a squashed uop never retires
        assert all(t.retire_cycle is None for t in squashed)

    def test_restored_uops_marked(self):
        core, tracer = traced_core("leela", apf=True)
        assert tracer.restores
        assert tracer.restored_uop_count() > 0

    def test_render_produces_rows(self):
        core, tracer = traced_core()
        at = tracer.recoveries[0]
        text = tracer.render(at - 4, at + 12)
        lines = text.splitlines()
        assert len(lines) > 3
        assert "recoveries" in lines[0]
        # every row lane has the same width
        widths = {len(line.split("|")[1]) for line in lines[1:]
                  if "|" in line}
        assert len(widths) == 1

    def test_render_rejects_empty_window(self):
        core, tracer = traced_core()
        with pytest.raises(ValueError):
            tracer.render(10, 10)

    def test_frontend_latency_histogram(self):
        core, tracer = traced_core(apf=True)
        hist = tracer.frontend_latency_histogram()
        assert hist
        depth = core.config.frontend.depth
        # the dominant frontend latency is the pipe depth; restored uops
        # appear at small latencies
        assert any(delta >= depth for delta in hist)
        assert min(hist) < depth

    def test_tracing_does_not_change_timing(self):
        plain_config = small_core_config()
        program = build_workload("xz")
        trace = workload_trace("xz", 3_000)
        core_plain = OoOCore(plain_config, program, trace, seed=5)
        core_plain.run(3_000)
        core_traced = OoOCore(plain_config, program, trace, seed=5)
        PipeTracer(core_traced)
        core_traced.run(3_000)
        assert core_plain.now == core_traced.now


def timeline_snapshot(tracer):
    return {
        seq: (t.fetch_cycle, t.allocate_cycle, t.done_cycle,
              t.retire_cycle, t.squash_cycle, t.wrong_path, t.restored,
              t.is_branch, t.mispredict)
        for seq, t in tracer.timelines.items()
    }


class TestTracerDriverEquivalence:
    """The old monkey-patch tracer silently missed events under the
    default skipping loop (its gated dispatch bypassed the patched
    methods); the obs-hook tracer must see identical timelines under both
    drivers — on a mispredict-heavy workload, where squash/restore
    traffic is densest."""

    # deepsjeng/leela are the mispredict-heavy picks (highest MPKI of the
    # small set); APF on so restore events are exercised too
    @pytest.mark.parametrize("workload", ["deepsjeng", "leela"])
    @pytest.mark.parametrize("apf", [False, True])
    def test_identical_timelines_both_drivers(self, workload, apf):
        snapshots = {}
        for cycle_by_cycle in (True, False):
            config = small_core_config()
            if apf:
                config = config.with_apf()
            program = build_workload(workload)
            trace = workload_trace(workload, 4_000)
            core = OoOCore(config, program, trace, seed=5)
            tracer = PipeTracer(core)
            core.run(4_000, cycle_by_cycle=cycle_by_cycle)
            snapshots[cycle_by_cycle] = (timeline_snapshot(tracer),
                                         tracer.recoveries,
                                         tracer.restores)
        assert snapshots[False] == snapshots[True]

    def test_squash_suffix_matches_brute_force(self):
        """Satellite 2: the O(squashed) suffix walk must squash exactly
        the set a brute-force scan over all timelines would have."""
        core, tracer = traced_core("deepsjeng")
        assert tracer.recoveries, "need mispredicts for this test"
        squashed = {seq for seq, t in tracer.timelines.items()
                    if t.squash_cycle is not None}
        # brute force: replay per-uop outcomes from the core's trace-driven
        # ground truth — a uop is squashed iff it never retired
        retired = {seq for seq, t in tracer.timelines.items()
                   if t.retire_cycle is not None}
        in_flight = {seq for seq, t in tracer.timelines.items()
                     if t.retire_cycle is None
                     and t.squash_cycle is None}
        assert squashed.isdisjoint(retired)
        # everything fetched either retired, was squashed, or is still in
        # flight at end-of-run; the three sets partition the timelines
        assert squashed | retired | in_flight \
            == set(tracer.timelines)
        assert len(squashed) + len(retired) + len(in_flight) \
            == len(tracer.timelines)


class TestPlots:
    def test_bar_chart_basic(self):
        text = bar_chart({"a": 1.05, "b": 1.10}, title="T", baseline=1.0)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        # larger value gets the longer bar
        assert lines[2].count("█") > lines[1].count("█")

    def test_bar_chart_negative_marked(self):
        text = bar_chart({"up": 1.04, "down": 0.96}, baseline=1.0)
        assert "<" in text

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_grouped_chart_covers_all_categories(self):
        text = grouped_bar_chart(
            {"apf": {"x": 1.05, "y": 1.02}, "dpip": {"x": 0.99}})
        assert "x:" in text and "y:" in text
        assert "apf" in text and "dpip" in text

    def test_sparkline(self):
        line = sparkline([1, 2, 3, 2, 1])
        assert len(line) == 5
        assert line[2] == "█"
        assert sparkline([]) == ""
        assert len(set(sparkline([5, 5, 5]))) == 1
