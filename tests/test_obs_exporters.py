"""Exporter contracts: golden files + format validators.

The golden files under ``tests/golden/`` pin the exact bytes both
exporters produce for a tiny deterministic workload (fixed seed, fixed
window, fixed event stream). Regenerate them — after deliberately
changing an exporter or the event taxonomy — with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_obs_exporters.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.common.config import small_core_config
from repro.core.ooo_core import OoOCore
from repro.obs import (
    EventRecorder,
    ExportFormatError,
    chrome_trace,
    o3_pipeview,
    validate_chrome_trace,
    validate_o3_trace,
    write_chrome_trace,
    write_o3_pipeview,
)
from repro.workloads.profiles import build_workload, workload_trace

GOLDEN_DIR = Path(__file__).parent / "golden"
INSTRUCTIONS = 120
SEED = 7


def tiny_events():
    """The canonical tiny deterministic stream (leela, 120 uops, APF on
    so the stream exercises the APF event kinds too)."""
    config = small_core_config().with_apf()
    core = OoOCore(config, build_workload("leela"),
                   workload_trace("leela", INSTRUCTIONS), seed=SEED)
    recorder = EventRecorder()
    core.attach_obs(recorder)
    core.run(INSTRUCTIONS)
    return list(recorder.events)


@pytest.fixture(scope="module")
def events():
    return tiny_events()


def check_golden(name, rendered):
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
    assert path.exists(), (
        f"golden file {path} missing; regenerate with REPRO_REGEN_GOLDEN=1")
    assert rendered == path.read_text(encoding="utf-8"), (
        f"{name} drifted from its golden file; if the change is "
        f"intentional, regenerate with REPRO_REGEN_GOLDEN=1")


class TestGoldenFiles:
    def test_chrome_trace_matches_golden(self, events):
        doc = chrome_trace(events)
        validate_chrome_trace(doc)
        rendered = json.dumps(doc, indent=1, sort_keys=True) + "\n"
        check_golden("tiny_leela.trace.json", rendered)

    def test_o3_pipeview_matches_golden(self, events):
        text = o3_pipeview(events)
        validate_o3_trace(text)
        check_golden("tiny_leela.o3pipeview.txt", text)

    def test_write_helpers_round_trip(self, events, tmp_path):
        doc = write_chrome_trace(tmp_path / "t.json", events)
        on_disk = json.loads((tmp_path / "t.json").read_text())
        assert on_disk == doc
        text = write_o3_pipeview(tmp_path / "t.txt", events)
        assert (tmp_path / "t.txt").read_text() == text


class TestChromeTraceStructure:
    def test_documented_shape(self, events):
        doc = chrome_trace(events, process_name="unit")
        assert doc["displayTimeUnit"] == "ns"
        trace = doc["traceEvents"]
        assert trace[0]["ph"] == "M"
        assert trace[0]["args"]["name"] == "unit"
        phases = {event["ph"] for event in trace}
        assert {"M", "X", "C"} <= phases
        spans = [e for e in trace if e["ph"] == "X"]
        assert spans
        for span in spans:
            assert span["dur"] >= 1
            assert 0 <= span["tid"] < 16
            assert span["cat"] in ("on_trace", "wrong_path", "restored")
        counters = {e["name"] for e in trace if e["ph"] == "C"}
        assert counters == {"backend_occupancy", "ftq_occupancy"}

    def test_validator_rejects_bad_documents(self):
        with pytest.raises(ExportFormatError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ExportFormatError, match="missing required"):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ExportFormatError, match="unsupported phase"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "B", "pid": 0, "tid": 0, "name": "x", "ts": 0}]})
        with pytest.raises(ExportFormatError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 0,
                 "dur": 0}]})
        with pytest.raises(ExportFormatError, match="ts"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "pid": 0, "tid": 0, "name": "x", "ts": -3,
                 "s": "g"}]})
        with pytest.raises(ExportFormatError, match="scope"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "pid": 0, "tid": 0, "name": "x", "ts": 0,
                 "s": "z"}]})


class TestO3Structure:
    def test_record_shape(self, events):
        text = o3_pipeview(events)
        lines = [line for line in text.splitlines() if line]
        assert len(lines) % 7 == 0
        assert lines[0].startswith("O3PipeView:fetch:")
        assert lines[6].startswith("O3PipeView:retire:")
        # squashed uops retire at tick 0 (gem5 convention)
        assert any(line == "O3PipeView:retire:0:store:0"
                   for line in lines)

    def test_validator_rejects_bad_traces(self):
        with pytest.raises(ExportFormatError, match="whole 7-line"):
            validate_o3_trace("O3PipeView:fetch:0:0x0:0:0:NOP\n")
        good = o3_pipeview(tiny_events())
        lines = good.splitlines()
        lines[1] = "O3PipeView:rename:0"   # decode line replaced
        with pytest.raises(ExportFormatError, match="expected stage"):
            validate_o3_trace("\n".join(lines) + "\n")
        lines = good.splitlines()
        lines[2] = "O3PipeView:rename:banana"
        with pytest.raises(ExportFormatError, match="non-integer"):
            validate_o3_trace("\n".join(lines) + "\n")
        lines = good.splitlines()
        lines[3] = "O3PipeView:dispatch:-4"
        with pytest.raises(ExportFormatError, match="negative"):
            validate_o3_trace("\n".join(lines) + "\n")

    def test_empty_stream_is_valid(self):
        assert o3_pipeview([]) == ""
        validate_o3_trace("")
