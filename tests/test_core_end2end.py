"""End-to-end core tests: baseline behaviour, recovery invariants, APF
restore correctness, determinism, and the relationships the paper's
mechanism depends on."""

import pytest

from repro.common.config import (
    AlternatePathMode,
    FetchScheme,
    small_core_config,
)
from repro.core.ooo_core import OoOCore
from repro.core.simulator import Simulator, run_benchmark
from repro.workloads.emulator import Emulator
from repro.workloads.profiles import build_workload, workload_trace
from repro.isa.opcodes import Op
from repro.workloads.program import ProgramBuilder


WARMUP = 4_000
MEASURE = 8_000
TOTAL = WARMUP + MEASURE


def run_core(workload="leela", config=None, total=TOTAL, warmup=WARMUP):
    config = config or small_core_config()
    program = build_workload(workload)
    trace = workload_trace(workload, total)
    core = OoOCore(config, program, trace, seed=5)
    core.run(total, warmup=warmup)
    return core


class TestBaseline:
    def test_retires_exactly_target(self):
        core = run_core()
        assert core.retired == TOTAL

    def test_ipc_positive_and_bounded(self):
        core = run_core()
        assert 0.05 < core.ipc() <= core.config.backend.retire_width

    def test_only_correct_path_retires(self):
        """Every retired uop must carry a valid trace index — wrong-path
        uops are always squashed before retirement."""
        config = small_core_config()
        program = build_workload("deepsjeng")
        trace = workload_trace("deepsjeng", TOTAL)
        core = OoOCore(config, program, trace, seed=5)

        retired_trace_indices = []
        original_retire = core._retire

        def checked_retire():
            before = list(core.rob)[:core.config.backend.retire_width]
            count_before = core.retired
            original_retire()
            retired = core.retired - count_before
            for du in before[:retired]:
                retired_trace_indices.append(du.trace_index)
        core._retire = checked_retire
        core.run(TOTAL)
        assert retired_trace_indices
        assert all(idx >= 0 for idx in retired_trace_indices)
        # retirement is in trace order
        assert retired_trace_indices == sorted(retired_trace_indices)

    def test_mispredicts_recorded(self):
        core = run_core("leela")
        assert core.measured("cond_mispredicts") > 0
        assert core.measured("cond_branches") \
            > core.measured("cond_mispredicts")

    def test_deterministic(self):
        a = run_core("xz")
        b = run_core("xz")
        assert a.now == b.now
        assert a.stats.snapshot() == b.stats.snapshot()

    def test_max_cycles_cap(self):
        config = small_core_config()
        program = build_workload("xz")
        trace = workload_trace("xz", TOTAL)
        core = OoOCore(config, program, trace, seed=5)
        core.run(TOTAL, max_cycles=100)
        assert core.now == 100
        assert core.retired < TOTAL


class TestMispredictionPenalty:
    def test_higher_mpki_means_lower_ipc(self):
        """Within one workload, disabling the predictor's tables is not
        possible, but across workloads with similar structure, higher MPKI
        must cost cycles: leela (high MPKI) has lower IPC than x264."""
        leela = run_core("leela")
        x264 = run_core("x264")
        assert leela.branch_mpki() > x264.branch_mpki()
        assert leela.ipc() < x264.ipc()

    def test_deeper_frontend_hurts_high_mpki_more(self):
        """The re-fill penalty scales with frontend depth (Fig. 12b's
        premise)."""
        shallow = small_core_config()
        deep = small_core_config().with_frontend(decode_stages=10)
        ipc_shallow = run_core("leela", shallow).ipc()
        ipc_deep = run_core("leela", deep).ipc()
        assert ipc_deep < ipc_shallow


class TestAPFEndToEnd:
    def test_apf_speeds_up_high_mpki_workload(self):
        base = run_core("leela")
        apf = run_core("leela", small_core_config().with_apf())
        assert apf.ipc() > base.ipc()

    def test_restores_happen_and_histogram_populated(self):
        core = run_core("leela", small_core_config().with_apf())
        assert core.measured("apf_restores") > 0
        hist = core.stats.histogram("refill_saved")
        assert hist.total() > 0
        assert any(bucket > 0 for bucket in hist.buckets)

    def test_restored_uops_validated_against_trace(self):
        """Restored instructions retire as correct-path work: retired count
        still hits the target exactly, and the run stays architecturally
        in-order (guaranteed by the retire assertion test above — here we
        check it under APF restores)."""
        config = small_core_config().with_apf()
        program = build_workload("leela")
        trace = workload_trace("leela", TOTAL)
        core = OoOCore(config, program, trace, seed=5)
        core.run(TOTAL)
        assert core.retired == TOTAL
        assert core.measured("apf_restores") > 0

    def test_apf_deterministic(self):
        cfg = small_core_config().with_apf()
        a = run_core("deepsjeng", cfg)
        b = run_core("deepsjeng", cfg)
        assert a.now == b.now

    def test_dualport_at_least_as_fast_as_banked(self):
        banked = run_core(
            "tc", small_core_config().with_apf(
                fetch_scheme=FetchScheme.BANKED))
        dualport = run_core(
            "tc", small_core_config().with_apf(
                fetch_scheme=FetchScheme.DUAL_PORT))
        assert dualport.measured("apf_bank_conflict_cycles") == 0
        assert banked.measured("apf_bank_conflict_cycles") > 0

    def test_more_buffers_do_not_reduce_restores(self):
        few = run_core("leela", small_core_config().with_apf(num_buffers=1))
        many = run_core("leela", small_core_config().with_apf(num_buffers=8))
        assert many.measured("apf_restores") \
            >= few.measured("apf_restores") - 5

    def test_zero_depth_equivalent_baseline(self):
        """An APF pipeline that can't hold anything gives no restores."""
        cfg = small_core_config().with_apf(pipeline_depth=0,
                                           buffer_capacity_uops=0)
        core = run_core("leela", cfg)
        assert core.measured("apf_restores") == 0


class TestDPIPEndToEnd:
    def test_dpip_runs_and_restores(self):
        cfg = small_core_config().with_apf(
            mode=AlternatePathMode.DPIP, pipeline_depth=15,
            fetch_scheme=FetchScheme.TIME_SHARED,
            timeshare_main_cycles=1, timeshare_alt_cycles=1,
            num_buffers=0)
        core = run_core("leela", cfg)
        assert core.retired == TOTAL
        assert core.measured("apf_restores") > 0

    def test_apf_covers_more_than_dpip(self):
        """APF's buffers + intermediate-branch targeting give it more
        restore opportunities than one-at-a-time DPIP (Section IV)."""
        apf_cfg = small_core_config().with_apf()
        dpip_cfg = small_core_config().with_apf(
            mode=AlternatePathMode.DPIP, pipeline_depth=15, num_buffers=0)
        apf = run_core("leela", apf_cfg)
        dpip = run_core("leela", dpip_cfg)
        assert apf.measured("apf_restores") > dpip.measured("apf_restores")


class TestSimulatorFacade:
    def test_run_benchmark_returns_metrics(self):
        result = run_benchmark("xz", warmup=2_000, measure=4_000)
        assert result.workload == "xz"
        assert result.instructions == 4_000
        assert result.ipc > 0
        assert result.cycles > 0
        assert result.counters

    def test_speedup_over(self):
        base = run_benchmark("leela", warmup=2_000, measure=4_000)
        apf = run_benchmark("leela", config=small_core_config().with_apf(),
                            warmup=2_000, measure=4_000)
        assert apf.speedup_over(base) == pytest.approx(
            apf.ipc / base.ipc)

    def test_table2_metrics_range(self):
        result = run_benchmark("leela", warmup=4_000, measure=8_000)
        assert 0.0 <= result.specificity("h2p") <= 1.0
        assert 0.0 <= result.wastage("h2p") <= 1.0
        assert 0.0 <= result.specificity("lowconf") <= 1.0

    def test_simulator_accepts_custom_trace(self):
        b = ProgramBuilder()
        b.label("entry")
        b.movi(1, 100)
        loop = b.label("loop")
        b.alu(Op.ADD, 2, 2, 2)
        b.emit(Op.ADDI, dest=1, src1=1, imm=-1)
        b.branch(Op.BNEZ, loop, src1=1)
        b.jump("entry")
        program = b.finalize(entry_label="entry")
        trace = Emulator(program).run(3_000)
        sim = Simulator(small_core_config())
        result = sim.run("custom", warmup=500, measure=2_000,
                         program=program, trace=trace)
        assert result.instructions == 2_000
