"""Unit tests for the APF engine: job lifecycle, buffers, scheduling."""

import pytest

from repro.branch.btb import BTB
from repro.branch.h2p import H2PTable
from repro.branch.indirect import IndirectPredictor
from repro.branch.history import SpeculativeHistory
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TageSCL
from repro.common.config import (
    APFConfig,
    AlternatePathMode,
    BTBConfig,
    FrontendConfig,
    H2PTableConfig,
    small_core_config,
)
from repro.core.apf import APFEngine
from repro.core.fetch_engine import BranchUnit
from repro.core.uops import InflightBranch
from repro.isa.opcodes import BranchKind, Op
from repro.memory.cache import CacheHierarchy
from repro.common.statistics import StatGroup
from repro.workloads.program import ProgramBuilder


def straight_line_program(length=300):
    b = ProgramBuilder()
    b.label("entry")
    loop = b.label("loop")
    for _ in range(length):
        b.alu(Op.ADD, 1, 1, 1)
    b.jump(loop)
    return b.finalize(entry_label="entry")


def make_engine(program=None, **apf_overrides):
    config = small_core_config()
    apf_cfg = APFConfig(enabled=True, **apf_overrides)
    program = program or straight_line_program()
    bu = BranchUnit(TageSCL(config.tage, seed=3), BTB(BTBConfig()),
                    IndirectPredictor(), H2PTable(H2PTableConfig()))
    hierarchy = CacheHierarchy(config.memory)
    # pre-warm the I-cache so alternate-path fetch doesn't instantly
    # terminate on cold misses
    for pc in range(program.code_base, program.code_base + 2048, 32):
        hierarchy.ifetch(pc)
    stats = StatGroup("apf")
    engine = APFEngine(apf_cfg, bu, program, hierarchy,
                       FrontendConfig(), stats)
    return engine, program


def make_branch(program, seq=10, pc_offset=0, taken=False,
                h2p=True, low_conf=False):
    pc = program.code_base + pc_offset
    uop = program.uop_at(pc)
    if uop is None or not uop.is_branch:
        # synthesise a conditional branch record over an arbitrary pc
        from repro.isa.uop import StaticUop
        uop = StaticUop(pc, Op.BEQZ, src1=1,
                        target=program.code_base + 64)
    rec = InflightBranch(seq, uop, BranchKind.CONDITIONAL, True, 0)
    rec.predicted_taken = taken
    rec.h2p_marked = h2p
    rec.low_conf = low_conf
    rec.hist_checkpoint = (0, 0)
    rec.ras_checkpoint = ()
    return rec


def main_state():
    return SpeculativeHistory(128), ReturnAddressStack(32)


class TestJobLifecycle:
    def test_start_job_inverts_prediction(self):
        engine, program = make_engine()
        rec = make_branch(program, taken=False)
        hist, ras = main_state()
        engine.start_job(rec, hist, ras)
        job = engine.active_job
        assert job is not None
        # predicted not-taken => alternate path starts at the taken target
        assert job.pc == rec.uop.target
        assert rec.apf_job is job

    def test_job_completes_after_depth_cycles(self):
        engine, program = make_engine(pipeline_depth=5)
        rec = make_branch(program)
        hist, ras = main_state()
        for cycle in range(10):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
            if rec.apf_buffer is not None:
                break
        assert rec.apf_buffer is not None
        assert engine.active_job is None
        assert 0 < len(rec.apf_buffer.uops) <= 5 * 8

    def test_buffer_capacity_respected(self):
        engine, program = make_engine(pipeline_depth=13,
                                      buffer_capacity_uops=16)
        rec = make_branch(program)
        hist, ras = main_state()
        for cycle in range(20):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
        assert rec.apf_buffer is not None
        assert len(rec.apf_buffer.uops) <= 16

    def test_held_when_no_buffer_free(self):
        engine, program = make_engine(pipeline_depth=3, num_buffers=0)
        rec = make_branch(program)
        hist, ras = main_state()
        for cycle in range(8):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
        assert engine.held_job is not None
        assert engine.pipeline_busy()
        # a second candidate cannot start while the pipeline holds a path
        rec2 = make_branch(program, seq=20, pc_offset=8)
        engine.cycle(9, [rec, rec2], hist, ras, can_fetch=True,
                     blocked_tage_banks=set(), blocked_icache_banks=set())
        assert rec2.apf_job is None

    def test_release_frees_buffer(self):
        engine, program = make_engine(pipeline_depth=3, num_buffers=2)
        rec = make_branch(program)
        hist, ras = main_state()
        for cycle in range(8):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
        assert rec.apf_buffer is not None
        engine.release_branch(rec)
        assert rec.apf_buffer is None
        assert engine.free_buffer_index() == 0

    def test_capture_from_pipeline_mid_fetch(self):
        engine, program = make_engine(pipeline_depth=13)
        rec = make_branch(program)
        hist, ras = main_state()
        for cycle in range(3):   # partial fetch only
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
        buffer = engine.capture(rec)
        assert buffer is not None
        assert buffer.uops
        assert engine.active_job is None

    def test_capture_returns_none_without_path(self):
        engine, program = make_engine()
        rec = make_branch(program)
        assert engine.capture(rec) is None


class TestScheduling:
    def test_low_confidence_priority(self):
        engine, program = make_engine(use_tage_confidence=True)
        older_h2p = make_branch(program, seq=1, h2p=True, low_conf=False)
        younger_low = make_branch(program, seq=2, pc_offset=8,
                                  h2p=False, low_conf=True)
        pick = engine.select_candidate([older_h2p, younger_low])
        assert pick is younger_low

    def test_oldest_first_within_class(self):
        engine, program = make_engine()
        a = make_branch(program, seq=1, low_conf=True)
        b = make_branch(program, seq=2, pc_offset=8, low_conf=True)
        assert engine.select_candidate([a, b]) is a

    def test_h2p_only_when_confidence_disabled(self):
        engine, program = make_engine(use_tage_confidence=False)
        low = make_branch(program, seq=1, h2p=False, low_conf=True)
        h2p = make_branch(program, seq=2, pc_offset=8, h2p=True)
        assert engine.select_candidate([low, h2p]) is h2p

    def test_resolved_and_squashed_skipped(self):
        engine, program = make_engine()
        rec = make_branch(program, low_conf=True)
        rec.resolved = True
        assert engine.select_candidate([rec]) is None
        rec.resolved = False
        rec.squashed = True
        assert engine.select_candidate([rec]) is None

    def test_branch_with_existing_path_skipped(self):
        engine, program = make_engine()
        rec = make_branch(program, low_conf=True)
        hist, ras = main_state()
        engine.start_job(rec, hist, ras)
        assert engine.select_candidate([rec]) is None


class TestDpipRestrictions:
    def make_dpip(self, program=None):
        return make_engine(program, mode=AlternatePathMode.DPIP,
                           pipeline_depth=15, num_buffers=0)

    def test_single_pending_candidate(self):
        engine, program = self.make_dpip()
        first = make_branch(program, seq=1, low_conf=True)
        hist, ras = main_state()
        engine.start_job(first, hist, ras)
        second = make_branch(program, seq=2, pc_offset=8, low_conf=True)
        third = make_branch(program, seq=3, pc_offset=16, low_conf=True)
        engine.note_new_branch(second)
        engine.note_new_branch(third)
        assert second.dpip_eligible
        assert not third.dpip_eligible

    def test_holds_path_until_resolution(self):
        engine, program = self.make_dpip()
        rec = make_branch(program, seq=1, low_conf=True)
        hist, ras = main_state()
        for cycle in range(20):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
        assert engine.held_job is not None
        # stays held across more cycles until released
        engine.cycle(21, [rec], hist, ras, can_fetch=True,
                     blocked_tage_banks=set(), blocked_icache_banks=set())
        assert engine.held_job is not None
        engine.release_branch(rec)
        assert engine.held_job is None


class TestConflicts:
    def test_icache_bank_conflict_stalls(self):
        engine, program = make_engine(pipeline_depth=13)
        rec = make_branch(program)
        hist, ras = main_state()
        all_banks = {0, 1, 2, 3}
        for cycle in range(4):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=all_banks)
        assert engine.stats.get("apf_bank_conflict_cycles") >= 3
        assert engine.stats.get("apf_fetched_uops") == 0

    def test_no_conflict_when_banks_free(self):
        engine, program = make_engine(pipeline_depth=13)
        rec = make_branch(program)
        hist, ras = main_state()
        for cycle in range(4):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
        assert engine.stats.get("apf_bank_conflict_cycles") == 0
        assert engine.stats.get("apf_fetched_uops") > 0


class TestTerminations:
    def test_indirect_branch_terminates(self):
        b = ProgramBuilder()
        b.label("entry")
        b.movi(1, 0x400100)
        b.emit(Op.IJUMP, src1=1)
        b.nop_pad(200)
        program = b.finalize(entry_label="entry")
        engine, _ = make_engine(program)
        rec = make_branch(program, taken=True)  # alt path = fallthrough
        # fallthrough of a synthetic branch at code_base is code_base+4:
        # MOVI then IJUMP -> terminate
        hist, ras = main_state()
        for cycle in range(6):
            engine.cycle(cycle, [rec], hist, ras, can_fetch=True,
                         blocked_tage_banks=set(),
                         blocked_icache_banks=set())
            if rec.apf_buffer is not None:
                break
        assert engine.stats.get("apf_indirect_terminations") == 1

    def test_icache_miss_terminates_without_fill(self):
        engine, program = make_engine()
        # blow away the warmed I-cache
        engine.hierarchy.icache.flush()
        misses_before = engine.hierarchy.l2.stats.get("accesses")
        rec = make_branch(program)
        hist, ras = main_state()
        engine.cycle(0, [rec], hist, ras, can_fetch=True,
                     blocked_tage_banks=set(), blocked_icache_banks=set())
        assert engine.stats.get("apf_icache_terminations") == 1
        # the miss must NOT be sent to the next level (Section III-A)
        assert engine.hierarchy.l2.stats.get("accesses") == misses_before
